//! Intra-run sharding: one simulation partitioned across worker cores.
//!
//! The paper's datacenter is a set of independent M/M/1/k instance
//! queues coupled only through the dispatcher, admission control, and
//! the periodic control tick. That coupling structure makes a single
//! run shard naturally: the control period is a *conservative lookahead
//! window* — between two control ticks no global decision can occur, so
//! each shard may simulate its own instances' request traffic
//! independently up to the next tick without ever seeing an event from
//! another shard out of order.
//!
//! Execution alternates two strictly separated roles:
//!
//! * the **coordinator** (the calling thread) owns everything global —
//!   the workload, admission capacity `k`, the dispatcher, the host
//!   pool, VM lifecycle (boot/drain/destroy), Algorithm 1 — and runs it
//!   only at barriers;
//! * **shards** own the per-instance hot path — bounded FIFO queues,
//!   service completions, injected crashes — each with its own
//!   future-event list, and run in parallel between barriers on a
//!   dedicated worker pool.
//!
//! Barriers are placed at every control event: monitor ticks, policy
//! evaluations, boot completions, and the horizon. Between consecutive
//! barriers the active fleet and `k` are frozen, so the coordinator can
//! pre-route every arrival of the window to its target instance and
//! hand each shard a sealed per-window arrival list.
//!
//! # Shard-count invariance
//!
//! The merged [`RunSummary`] is bit-identical for every shard count,
//! by construction rather than by tolerance:
//!
//! * every random quantity is drawn from a counter-indexed stream keyed
//!   by a stable global identity — arrival index `j` for class,
//!   dispatch, and service draws ([`RngFactory::stream_indexed`]), VM
//!   id for time-to-failure — never from a shared sequential stream
//!   whose draw order would depend on the partition;
//! * instances are dealt round-robin to shards by VM id (`vm % n`), and
//!   every cross-shard reduction (retired-instance statistics, probe
//!   replay, death processing) merges in a fixed global order sorted by
//!   time and VM id, so float summation order never depends on `n`;
//! * shard FELs only ever hold events for instances the shard owns, and
//!   per-instance dynamics depend on nothing outside the instance.
//!
//! The sharded path is *its own* deterministic semantics: it is pinned
//! against itself across shard counts and FEL backends, not against the
//! serial engine (which draws from sequential RNG streams in event
//! order and therefore walks a different — equally valid — sample
//! path). DESIGN.md §10 documents the intentional divergences.

use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::config::{PriorityConfig, SimConfig};
use crate::host::HostPool;
use crate::metrics::{RunMetrics, RunSummary, StatsMode};
use crate::probe::{Probe, RejectReason, RequestClass};
use crate::sim::SimScratch;
use vmprov_core::dispatch::Dispatcher;
use vmprov_core::policy::{MonitorReport, PoolStatus, ProvisioningPolicy};
use vmprov_des::dist::{Distribution, Exponential};
use vmprov_des::pool::WorkerPool;
use vmprov_des::stats::{OnlineStats, SampleBatch, TimeWeighted};
use vmprov_des::{Engine, EventHandle, RngFactory, Scheduler, SimRng, SimTime, World};
use vmprov_workloads::{ArrivalBatch, ArrivalProcess, ServiceModel};

/// Sentinel VM id: the arrival was routed while the active fleet was
/// empty and is pre-destined for rejection (it still reaches a shard so
/// the offered/rejected counters and probe hooks fire uniformly).
const NO_VM: u32 = u32::MAX;

/// The dedicated pool for shard workers, separate from the campaign
/// pool in `vmprov-experiments`: a sharded run may itself be a job *on*
/// the campaign pool, and nesting `run_batch` onto one pool would
/// deadlock once every worker blocks on a batch of its own.
static SHARD_POOL: OnceLock<WorkerPool> = OnceLock::new();

fn shard_pool() -> &'static WorkerPool {
    SHARD_POOL.get_or_init(|| {
        WorkerPool::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

// ---------------------------------------------------------------------
// Shard side
// ---------------------------------------------------------------------

/// Events on a shard's private future-event list. Kept as small as the
/// serial [`Event`](crate::sim::Event): discriminant + one u32.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ShardEvent {
    /// Index into the shard's current window arrival list.
    Arrival(u32),
    /// Head-of-queue completion on the instance with this global VM id.
    Completion(u32),
    /// Injected crash of the instance with this global VM id.
    Failure(u32),
}

const _: () = assert!(std::mem::size_of::<ShardEvent>() == 8);

/// One arrival, fully routed by the coordinator: when, which instance,
/// which global arrival index (the RNG counter), which class.
#[derive(Debug, Clone, Copy)]
struct RoutedArrival {
    t: SimTime,
    vm: u32,
    index: u64,
    high: bool,
}

/// An arrival released from its batch but not yet routed (its window
/// has not started). `gen` is the global generation sequence number —
/// the tie-breaker that keeps equal-time arrivals in batch order.
#[derive(Debug, Clone, Copy)]
struct PenArrival {
    t: SimTime,
    gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LocalState {
    Active,
    Draining,
    Dead,
}

/// Per-instance state owned by a shard. Indexed by `vm_id / n_shards`;
/// ids the shard never saw (boots canceled before activation) leave
/// dead placeholder gaps.
#[derive(Debug)]
struct VmLocal {
    state: LocalState,
    /// (arrival time secs, service time) per admitted request, head in
    /// service.
    queue: VecDeque<(f64, f64)>,
    completion: Option<EventHandle>,
    failure: Option<EventHandle>,
    response: OnlineStats,
    service: OnlineStats,
    /// Deferred `(response, service)` pairs under [`StatsMode::Batched`];
    /// `None` in streaming mode. Flush points — batch full, instance
    /// retirement ([`ShardedSim::fold_stats`]), coordinator peeks, final
    /// reduction — all depend only on this VM's own completion sequence
    /// or on barrier-ordered coordinator reads, so the schedule stays
    /// invariant across shard counts.
    batch: Option<Box<SampleBatch>>,
    busy_seconds: f64,
    qos_violations: u64,
}

impl VmLocal {
    fn tombstone() -> Self {
        VmLocal {
            state: LocalState::Dead,
            queue: VecDeque::new(),
            completion: None,
            failure: None,
            response: OnlineStats::new(),
            service: OnlineStats::new(),
            batch: None,
            busy_seconds: 0.0,
            qos_violations: 0,
        }
    }

    /// Fold any deferred samples into the Welford accumulators.
    fn flush_batch(&mut self) {
        if let Some(b) = &mut self.batch {
            if !b.is_empty() {
                b.flush_into(&mut self.response, &mut self.service);
            }
        }
    }

    fn fresh() -> Self {
        VmLocal {
            state: LocalState::Active,
            ..VmLocal::tombstone()
        }
    }
}

/// A death observed inside a window, reported to the coordinator at the
/// next barrier (the only shard→coordinator channel besides reading the
/// world directly).
#[derive(Debug, Clone, Copy)]
struct ShardDeath {
    t: SimTime,
    vm: u32,
}

/// One probe event recorded on a shard, replayed at the barrier.
#[derive(Debug, Clone, Copy)]
struct ProbeRecord {
    t: SimTime,
    ev: ProbeEv,
}

#[derive(Debug, Clone, Copy)]
enum ProbeEv {
    Arrival(RequestClass),
    Reject(RequestClass, RejectReason),
    Admit(u32, u32),
    ServiceStart(u32),
    ServiceComplete(u32, f64, f64),
    Crash(u32, u64),
    Destroy(u32),
}

/// The world one shard simulates between barriers.
struct ShardWorld {
    nshards: u32,
    /// Current queue capacity k — updated by the coordinator at
    /// barriers, frozen within a window.
    k: u32,
    ts: f64,
    priority: Option<PriorityConfig>,
    service_model: ServiceModel,
    rngs: RngFactory,
    vms: Vec<VmLocal>,
    window: Vec<RoutedArrival>,
    deaths: Vec<ShardDeath>,
    offered: u64,
    rejected: u64,
    offered_high: u64,
    rejected_high: u64,
    instance_failures: u64,
    requests_lost: u64,
    /// Buffer probe events for barrier replay? Off for probes that
    /// observe nothing ([`Probe::observes_events`]).
    record: bool,
    /// Defer per-completion sample folding into per-VM [`SampleBatch`]es
    /// ([`StatsMode::Batched`]).
    batched: bool,
    log: Vec<ProbeRecord>,
}

impl ShardWorld {
    fn local(&mut self, vm: u32) -> &mut VmLocal {
        &mut self.vms[(vm / self.nshards) as usize]
    }

    fn push_log(&mut self, t: SimTime, ev: ProbeEv) {
        if self.record {
            self.log.push(ProbeRecord { t, ev });
        }
    }

    fn reject(&mut self, now: SimTime, class: RequestClass, reason: RejectReason) {
        self.rejected += 1;
        if self.priority.is_some() && class == RequestClass::High {
            self.rejected_high += 1;
        }
        self.push_log(now, ProbeEv::Reject(class, reason));
    }

    fn handle_arrival(&mut self, now: SimTime, idx: u32, sched: &mut Scheduler<'_, ShardEvent>) {
        let a = self.window[idx as usize];
        self.offered += 1;
        let class = if a.high {
            RequestClass::High
        } else {
            RequestClass::Low
        };
        if self.priority.is_some() && a.high {
            self.offered_high += 1;
        }
        self.push_log(now, ProbeEv::Arrival(class));
        // Class-visible capacity, as in the serial engine: high sees k,
        // low sees k minus the reserved slots; zero capacity is its own
        // rejection reason checked before pool state.
        let capacity = match self.priority {
            Some(pc) if !a.high => self.k.saturating_sub(pc.reserved_slots),
            _ => self.k,
        };
        if capacity == 0 {
            self.reject(now, class, RejectReason::NoClassCapacity);
            return;
        }
        if a.vm == NO_VM {
            self.reject(now, class, RejectReason::PoolFull);
            return;
        }
        let nshards = self.nshards;
        let v = &mut self.vms[(a.vm / nshards) as usize];
        // The instance may have crashed earlier in this window (the
        // coordinator routed before knowing); a crashed target rejects
        // like a full pool. Draining/dead targets are only reachable
        // that way — routing never picks them.
        if v.state != LocalState::Active || v.queue.len() as u32 >= capacity {
            self.reject(now, class, RejectReason::PoolFull);
            return;
        }
        let svc = self
            .service_model
            .sample(&mut self.rngs.stream_indexed("service", a.index));
        v.queue.push_back((now.as_secs(), svc));
        let len = v.queue.len() as u32;
        if len == 1 {
            v.completion = Some(sched.after(svc, ShardEvent::Completion(a.vm)));
        }
        self.push_log(now, ProbeEv::Admit(a.vm, len));
        if len == 1 {
            self.push_log(now, ProbeEv::ServiceStart(a.vm));
        }
    }

    fn handle_completion(&mut self, now: SimTime, vm: u32, sched: &mut Scheduler<'_, ShardEvent>) {
        let ts = self.ts;
        let v = self.local(vm);
        v.completion = None;
        let (arrived, svc) = v.queue.pop_front().expect("completion on empty queue");
        let response = now.as_secs() - arrived;
        match &mut v.batch {
            Some(b) => {
                if b.push(response, svc) {
                    b.flush_into(&mut v.response, &mut v.service);
                }
            }
            None => {
                v.response.push(response);
                v.service.push(svc);
            }
        }
        v.busy_seconds += svc;
        // Branchless for the same reason as `record_completion`: the
        // predicate is data-random under mixed load.
        v.qos_violations += u64::from(response > ts);
        let next = v.queue.front().copied();
        let draining_empty = next.is_none() && v.state == LocalState::Draining;
        if let Some((_, next_svc)) = next {
            v.completion = Some(sched.after(next_svc, ShardEvent::Completion(vm)));
        }
        self.push_log(now, ProbeEv::ServiceComplete(vm, response, svc));
        if next.is_some() {
            self.push_log(now, ProbeEv::ServiceStart(vm));
        }
        if draining_empty {
            // Last drained request done: the instance dies here, inside
            // the window; the coordinator settles billing and host
            // release at the barrier.
            let v = self.local(vm);
            v.state = LocalState::Dead;
            v.queue = VecDeque::new();
            if let Some(h) = v.failure.take() {
                sched.cancel(h);
            }
            self.deaths.push(ShardDeath { t: now, vm });
            self.push_log(now, ProbeEv::Destroy(vm));
        }
    }

    fn handle_failure(&mut self, now: SimTime, vm: u32, sched: &mut Scheduler<'_, ShardEvent>) {
        let v = self.local(vm);
        debug_assert!(v.state != LocalState::Dead, "failure on dead instance");
        v.failure = None;
        let lost = v.queue.len() as u64;
        if let Some(h) = v.completion.take() {
            sched.cancel(h);
        }
        v.queue = VecDeque::new();
        v.state = LocalState::Dead;
        self.requests_lost += lost;
        self.instance_failures += 1;
        self.deaths.push(ShardDeath { t: now, vm });
        self.push_log(now, ProbeEv::Crash(vm, lost));
        self.push_log(now, ProbeEv::Destroy(vm));
    }
}

impl World for ShardWorld {
    type Event = ShardEvent;

    fn handle(&mut self, now: SimTime, ev: ShardEvent, sched: &mut Scheduler<'_, ShardEvent>) {
        match ev {
            ShardEvent::Arrival(idx) => self.handle_arrival(now, idx, sched),
            ShardEvent::Completion(vm) => self.handle_completion(now, vm, sched),
            ShardEvent::Failure(vm) => self.handle_failure(now, vm, sched),
        }
    }
}

/// Runs one shard over one window: seed the routed arrivals, then
/// process every event up to the barrier (or drain completely for the
/// final window). Executed on the shard pool.
fn run_window(
    mut engine: Engine<ShardWorld>,
    arrivals: Vec<RoutedArrival>,
    end: SimTime,
    drain: bool,
) -> Engine<ShardWorld> {
    if drain {
        // Mirror the serial engine: failure clocks stop at the horizon
        // so crashes cannot land in the drain phase.
        let handles: Vec<EventHandle> = engine
            .world_mut()
            .vms
            .iter_mut()
            .filter_map(|v| v.failure.take())
            .collect();
        for h in handles {
            engine.cancel(h);
        }
    }
    assert!(
        arrivals.len() < NO_VM as usize,
        "window overflows u32 index"
    );
    for (i, a) in arrivals.iter().enumerate() {
        engine.schedule(a.t, ShardEvent::Arrival(i as u32));
    }
    engine.world_mut().window = arrivals;
    if drain {
        engine.run();
    } else {
        engine.run_until(end);
    }
    engine
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetaState {
    Booting,
    Active,
    Draining,
    Dead,
}

/// Coordinator-side view of one VM.
#[derive(Debug, Clone, Copy)]
struct VmMeta {
    created_at: SimTime,
    host: usize,
    state: MetaState,
}

/// The two dispatchers whose picks are independent of live queue state
/// and can therefore be replayed by the coordinator at routing time.
#[derive(Debug, Clone, Copy)]
enum Routing {
    RoundRobin,
    Random,
}

struct Coordinator<P: Probe, W: ArrivalProcess> {
    cfg: SimConfig,
    nshards: u32,
    horizon: SimTime,
    // Workload expansion (the serial engine's Batch/Arrival machinery).
    workload: W,
    rng_arrivals: SimRng,
    /// Batches pulled through the burst seam but not yet expanded into
    /// the pen; `pending[pending_pos..]` is the unexpanded remainder.
    pending: Vec<ArrivalBatch>,
    pending_pos: usize,
    /// Batches pulled per `next_batch_run` call (`cfg.arrival_run`).
    /// The seam's stop-after-spread rule keeps the arrivals stream
    /// identical for every value, so the merged summary is invariant
    /// to it here — unlike the serial engine, where run > 1 reassigns
    /// event ids.
    arrival_run: usize,
    last_batch_time: SimTime,
    gen_seq: u64,
    pen: Vec<PenArrival>,
    arrival_index: u64,
    window_arrivals: u64,
    // Global control state.
    policy: Box<dyn ProvisioningPolicy>,
    routing: Routing,
    rngs: RngFactory,
    hosts: HostPool,
    k: u32,
    vms: Vec<VmMeta>,
    /// Active VM ids, sorted ascending — the frozen routing table.
    active: Vec<u32>,
    /// Draining VM ids, sorted ascending.
    draining: Vec<u32>,
    /// Booting VMs as `(activation time, vm id)` in creation order
    /// (equivalently activation order: the boot delay is constant).
    booting: Vec<(SimTime, u32)>,
    shards: Vec<Engine<ShardWorld>>,
    metrics: RunMetrics,
    // Fixed-order accumulators for instances that no longer exist.
    retired_response: OnlineStats,
    retired_service: OnlineStats,
    retired_busy: f64,
    retired_qos: u64,
    next_monitor: Option<SimTime>,
    next_eval: Option<SimTime>,
    probe: P,
    record: bool,
}

impl<P: Probe, W: ArrivalProcess> Coordinator<P, W> {
    fn shard_of(&self, vm: u32) -> usize {
        (vm % self.nshards) as usize
    }

    fn local_of(&self, vm: u32) -> usize {
        (vm / self.nshards) as usize
    }

    fn qlen(&self, vm: u32) -> u32 {
        let v = &self.shards[self.shard_of(vm)].world().vms[self.local_of(vm)];
        v.queue.len() as u32
    }

    // --- workload expansion -------------------------------------------

    /// Releases every batch due by `window_end` into the pen, pulling
    /// whole bursts through the seam and drawing spread offsets in
    /// exactly the serial engine's order: the seam stops a run after
    /// its first `spread > 0` batch, so generation and spread draws
    /// interleave on the sequential `rng_arrivals` stream precisely as
    /// one-at-a-time pulls would.
    fn fill_pen(&mut self, window_end: SimTime) {
        loop {
            if self.pending_pos == self.pending.len() {
                self.pending.clear();
                self.pending_pos = 0;
                let n = self.workload.next_batch_run(
                    &mut self.rng_arrivals,
                    self.arrival_run,
                    &mut self.pending,
                );
                if n == 0 {
                    return; // workload exhausted
                }
            }
            let b = self.pending[self.pending_pos];
            if b.time > window_end {
                return;
            }
            self.pending_pos += 1;
            // The serial engine re-anchors a late batch at the clock:
            // the Batch event fires at max(b.time, previous fire time).
            let t0 = if b.time >= self.last_batch_time {
                b.time
            } else {
                self.last_batch_time
            };
            self.last_batch_time = t0;
            for _ in 0..b.count {
                let offset = if b.spread > 0.0 {
                    self.rng_arrivals.uniform(0.0, b.spread)
                } else {
                    0.0
                };
                self.pen.push(PenArrival {
                    t: t0 + offset,
                    gen: self.gen_seq,
                });
                self.gen_seq += 1;
            }
        }
    }

    /// Routes every arrival due in `(now, end]` — class draw, dispatch
    /// pick, global index assignment — into per-shard lists. The active
    /// fleet is frozen until `end`, so routing now is exact.
    fn route_window(&mut self, end: SimTime) -> Vec<Vec<RoutedArrival>> {
        self.fill_pen(end);
        let mut due: Vec<PenArrival> = Vec::new();
        let mut i = 0;
        while i < self.pen.len() {
            if self.pen[i].t <= end {
                due.push(self.pen.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Global arrival order: time, then generation sequence. This is
        // the order that defines the arrival index j — the counter every
        // per-request random draw is keyed by.
        due.sort_unstable_by(|a, b| a.t.cmp(&b.t).then(a.gen.cmp(&b.gen)));
        let mut out: Vec<Vec<RoutedArrival>> = vec![Vec::new(); self.nshards as usize];
        let m = self.active.len();
        for a in due {
            let j = self.arrival_index;
            self.arrival_index += 1;
            self.window_arrivals += 1;
            let high = match self.cfg.priority {
                Some(pc) => self.rngs.stream_indexed("class", j).uniform01() < pc.high_fraction,
                None => true,
            };
            let (vm, shard) = if m == 0 {
                (NO_VM, (j % u64::from(self.nshards)) as usize)
            } else {
                let pick = match self.routing {
                    Routing::RoundRobin => (j % m as u64) as usize,
                    Routing::Random => self.rngs.stream_indexed("dispatch", j).below(m),
                };
                let vm = self.active[pick];
                (vm, self.shard_of(vm))
            };
            out[shard].push(RoutedArrival {
                t: a.t,
                vm,
                index: j,
                high,
            });
        }
        out
    }

    // --- shard execution ----------------------------------------------

    fn run_shards(&mut self, windows: Vec<Vec<RoutedArrival>>, end: SimTime, drain: bool) {
        let engines = std::mem::take(&mut self.shards);
        let items: Vec<(Engine<ShardWorld>, Vec<RoutedArrival>)> =
            engines.into_iter().zip(windows).collect();
        if items.len() <= 1 {
            // One shard runs inline: no pool threads, the exact code
            // path the determinism matrix anchors on.
            self.shards = items
                .into_iter()
                .map(|(e, a)| run_window(e, a, end, drain))
                .collect();
        } else {
            self.shards =
                shard_pool().run_batch(items, move |_, (e, a)| run_window(e, a, end, drain));
        }
    }

    /// Barrier entry: settle every death the window produced (in global
    /// `(time, vm)` order) and replay buffered probe events.
    fn collect_window(&mut self) {
        let mut deaths: Vec<ShardDeath> = Vec::new();
        for s in &mut self.shards {
            deaths.append(&mut s.world_mut().deaths);
        }
        deaths.sort_unstable_by(|a, b| a.t.cmp(&b.t).then(a.vm.cmp(&b.vm)));
        for d in deaths {
            let meta = self.vms[d.vm as usize];
            match meta.state {
                MetaState::Active => {
                    let i = self.active.binary_search(&d.vm).expect("active id");
                    self.active.remove(i);
                }
                MetaState::Draining => {
                    let i = self.draining.binary_search(&d.vm).expect("draining id");
                    self.draining.remove(i);
                }
                MetaState::Booting | MetaState::Dead => {
                    unreachable!("shard death for a {:?} VM", meta.state)
                }
            }
            self.vms[d.vm as usize].state = MetaState::Dead;
            self.hosts.release(meta.host, self.cfg.vm_shape);
            self.metrics.vm_seconds += d.t - meta.created_at;
            self.metrics.instances.add(d.t, -1.0);
            self.fold_stats(d.vm);
        }
        if self.record {
            self.replay_probes();
        }
    }

    /// Folds a finished instance's statistics into the retired
    /// accumulators. Call order is fixed by the barrier protocol, which
    /// is what makes the float merges shard-count invariant.
    fn fold_stats(&mut self, vm: u32) {
        let (si, li) = (self.shard_of(vm), self.local_of(vm));
        let v = &mut self.shards[si].world_mut().vms[li];
        v.flush_batch();
        let (resp, svc, busy, qos) = (v.response, v.service, v.busy_seconds, v.qos_violations);
        self.retired_response.merge(&resp);
        self.retired_service.merge(&svc);
        self.retired_busy += busy;
        self.retired_qos += qos;
    }

    fn replay_probes(&mut self) {
        let mut records: Vec<(SimTime, u32, ProbeEv)> = Vec::new();
        for (si, s) in self.shards.iter_mut().enumerate() {
            let w = s.world_mut();
            records.extend(w.log.drain(..).map(|r| (r.t, si as u32, r.ev)));
        }
        // Stable by time: equal-time records keep shard order, which is
        // itself deterministic. Each replayed hook is preceded by
        // `on_shard` so trace lines carry their origin.
        records.sort_by_key(|r| r.0);
        for (t, shard, ev) in records {
            self.probe.on_shard(shard);
            match ev {
                ProbeEv::Arrival(class) => self.probe.on_arrival(t, class),
                ProbeEv::Reject(class, reason) => self.probe.on_reject(t, class, reason),
                ProbeEv::Admit(vm, len) => self.probe.on_admit(t, vm, len),
                ProbeEv::ServiceStart(vm) => self.probe.on_service_start(t, vm),
                ProbeEv::ServiceComplete(vm, r, s) => self.probe.on_service_complete(t, vm, r, s),
                ProbeEv::Crash(vm, lost) => self.probe.on_vm_crash(t, vm, lost),
                ProbeEv::Destroy(vm) => self.probe.on_vm_destroy(t, vm),
            }
        }
    }

    // --- VM lifecycle (barrier only) ----------------------------------

    /// Draws the instance's time-to-failure and installs its live state
    /// on the owning shard. TTF is keyed by VM id, so the draw is
    /// identical whatever shard the instance lands on.
    fn install_local(&mut self, vm: u32, now: SimTime) {
        let ttf = self.cfg.instance_mtbf.map(|mtbf| {
            Exponential::from_mean(mtbf)
                .sample(&mut self.rngs.stream_indexed("failures", u64::from(vm)))
        });
        let local = self.local_of(vm);
        let engine = &mut self.shards[(vm % self.nshards) as usize];
        let world = engine.world_mut();
        if world.vms.len() <= local {
            // Gaps are canceled boots: ids that never activated.
            world.vms.resize_with(local + 1, VmLocal::tombstone);
        }
        world.vms[local] = VmLocal::fresh();
        if world.batched {
            world.vms[local].batch = Some(Box::new(SampleBatch::new()));
        }
        if let Some(ttf) = ttf {
            let h = engine.schedule(now + ttf, ShardEvent::Failure(vm));
            engine.world_mut().vms[local].failure = Some(h);
        }
    }

    /// Allocates a VM; active immediately (`immediate`, the initial
    /// fleet and zero boot delay) or after the boot delay.
    fn create_instance(&mut self, now: SimTime, immediate: bool) {
        let Some(host) = self.hosts.place(self.cfg.vm_shape) else {
            self.metrics.vm_creation_failures += 1;
            return;
        };
        let vm = self.vms.len() as u32;
        self.vms.push(VmMeta {
            created_at: now,
            host,
            state: MetaState::Booting,
        });
        self.metrics.vms_created += 1;
        self.metrics.instances.add(now, 1.0);
        self.probe.on_vm_boot(now, vm);
        if immediate {
            self.vms[vm as usize].state = MetaState::Active;
            self.active.push(vm); // new ids are the largest: stays sorted
            self.probe.on_vm_active(now, vm);
            self.install_local(vm, now);
        } else {
            self.booting.push((now + self.cfg.boot_delay, vm));
        }
    }

    /// Activates every boot due by `now` (each such activation *is* a
    /// barrier, so routing always sees the grown fleet from its start).
    fn activate_boots(&mut self, now: SimTime) {
        while let Some(&(done, vm)) = self.booting.first() {
            if done > now {
                break;
            }
            self.booting.remove(0);
            self.vms[vm as usize].state = MetaState::Active;
            let i = self.active.binary_search(&vm).unwrap_err();
            self.active.insert(i, vm);
            self.probe.on_vm_active(now, vm);
            self.install_local(vm, now);
        }
    }

    /// Destroys an idle active instance at a barrier (scale-down).
    fn destroy_idle(&mut self, vm: u32, now: SimTime) {
        let meta = self.vms[vm as usize];
        self.vms[vm as usize].state = MetaState::Dead;
        self.hosts.release(meta.host, self.cfg.vm_shape);
        self.metrics.vm_seconds += now - meta.created_at;
        self.metrics.instances.add(now, -1.0);
        self.fold_stats(vm);
        let local = self.local_of(vm);
        let engine = &mut self.shards[(vm % self.nshards) as usize];
        let v = &mut engine.world_mut().vms[local];
        debug_assert!(v.queue.is_empty() && v.completion.is_none());
        v.state = LocalState::Dead;
        if let Some(h) = v.failure.take() {
            engine.cancel(h);
        }
        self.probe.on_vm_destroy(now, vm);
    }

    /// Applies a sizing decision, mirroring the serial engine's
    /// transition order: revive draining before booting; destroy idle,
    /// then cancel the newest boots, then drain the shortest queues.
    fn apply_target(&mut self, target: u32, now: SimTime) {
        let target = target.max(1);
        let existing = (self.booting.len() + self.active.len()) as u32;
        if target > existing {
            let mut need = target - existing;
            while need > 0 {
                let Some(vm) = self.draining.pop() else { break };
                self.vms[vm as usize].state = MetaState::Active;
                let i = self.active.binary_search(&vm).unwrap_err();
                self.active.insert(i, vm);
                let local = self.local_of(vm);
                let engine = &mut self.shards[(vm % self.nshards) as usize];
                engine.world_mut().vms[local].state = LocalState::Active;
                self.probe.on_vm_revive(now, vm);
                need -= 1;
            }
            let immediate = self.cfg.boot_delay <= 0.0;
            for _ in 0..need {
                self.create_instance(now, immediate);
            }
        } else if target < existing {
            let mut excess = existing - target;
            // 1. Idle actives die immediately, scanned in ascending VM
            //    id (the serial engine scans its churned slot list; the
            //    sharded order is the stable equivalent).
            let mut i = 0;
            while excess > 0 && i < self.active.len() {
                let vm = self.active[i];
                if self.qlen(vm) == 0 {
                    self.active.remove(i);
                    self.destroy_idle(vm, now);
                    excess -= 1;
                } else {
                    i += 1;
                }
            }
            // 2. Cancel the newest boots: nothing ever ran there, so no
            //    shard state exists to clean up.
            while excess > 0 {
                let Some((_, vm)) = self.booting.pop() else {
                    break;
                };
                let meta = self.vms[vm as usize];
                self.vms[vm as usize].state = MetaState::Dead;
                self.hosts.release(meta.host, self.cfg.vm_shape);
                self.metrics.vm_seconds += now - meta.created_at;
                self.metrics.instances.add(now, -1.0);
                self.probe.on_vm_destroy(now, vm);
                excess -= 1;
            }
            // 3. Drain busy actives, shortest queue first (ties to the
            //    lowest VM id).
            while excess > 0 && !self.active.is_empty() {
                let (idx, _) = self
                    .active
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &vm)| (self.qlen(vm), vm))
                    .expect("non-empty active list");
                let vm = self.active.remove(idx);
                self.vms[vm as usize].state = MetaState::Draining;
                let i = self.draining.binary_search(&vm).unwrap_err();
                self.draining.insert(i, vm);
                let local = self.local_of(vm);
                let engine = &mut self.shards[(vm % self.nshards) as usize];
                engine.world_mut().vms[local].state = LocalState::Draining;
                self.probe.on_vm_drain(now, vm);
                excess -= 1;
            }
        }
    }

    // --- control ticks -------------------------------------------------

    /// Monitored service statistics: retired instances first, then live
    /// instances in ascending VM id — the same fixed merge order as the
    /// final summary. Falls back to the configured priors below 30
    /// observations, like the serial engine.
    fn monitored_service(&self) -> (f64, f64) {
        let mut stats = self.retired_service;
        let mut ids: Vec<u32> = self
            .active
            .iter()
            .chain(self.draining.iter())
            .copied()
            .collect();
        ids.sort_unstable();
        for vm in ids {
            let v = &self.shards[self.shard_of(vm)].world().vms[self.local_of(vm)];
            match &v.batch {
                // Between barriers the batch may hold deferred samples; a
                // pure peek folds them without mutating shard state.
                Some(b) if !b.is_empty() => {
                    stats.merge(&SampleBatch::peek_flushed(&v.service, b.services()));
                }
                _ => stats.merge(&v.service),
            }
        }
        if stats.count() >= 30 {
            let mean = stats.mean();
            (mean, stats.population_variance() / (mean * mean))
        } else {
            (
                self.cfg.initial_service_estimate,
                self.cfg.initial_scv_estimate,
            )
        }
    }

    fn monitor(&mut self, now: SimTime) {
        self.policy
            .observe_arrivals(now, self.window_arrivals, self.cfg.monitor_interval);
        self.window_arrivals = 0;
        let next = now + self.cfg.monitor_interval;
        self.next_monitor = (next <= self.horizon).then_some(next);
    }

    fn evaluate(&mut self, now: SimTime) {
        let (tm, scv) = self.monitored_service();
        let new_k = self.policy.queue_capacity(tm);
        if new_k != self.k {
            self.k = new_k;
            for s in &mut self.shards {
                s.world_mut().k = new_k;
            }
        }
        let busy = self.active.iter().filter(|&&vm| self.qlen(vm) > 0).count();
        let status = PoolStatus {
            now,
            active_instances: (self.active.len() + self.booting.len()) as u32,
            draining_instances: self.draining.len() as u32,
            monitor: MonitorReport {
                mean_service_time: tm,
                service_scv: scv,
                observed_arrival_rate: self.window_arrivals as f64
                    / self.cfg.monitor_interval.max(1e-9),
                pool_utilization: if self.active.is_empty() {
                    0.0
                } else {
                    busy as f64 / self.active.len() as f64
                },
            },
        };
        let target = self.policy.evaluate(&status);
        if let Some(d) = self.policy.last_decision().copied() {
            self.probe.on_sizing(now, &d);
        }
        self.apply_target(target, now);
        let next = self.policy.next_evaluation(now);
        self.next_eval = (next <= self.horizon).then_some(next);
    }

    /// The next barrier after `now`: the earliest control event, capped
    /// at the horizon.
    fn next_barrier(&self, now: SimTime) -> SimTime {
        let mut next = self.horizon;
        if let Some(t) = self.next_monitor {
            next = next.min(t);
        }
        if let Some(t) = self.next_eval {
            next = next.min(t);
        }
        if let Some(&(done, _)) = self.booting.first() {
            next = next.min(done);
        }
        debug_assert!(next > now, "barrier must advance the clock");
        next
    }

    // --- run ------------------------------------------------------------

    fn run(mut self) -> (RunSummary, P, Vec<Engine<ShardWorld>>) {
        // Barrier at t = 0: the initial evaluation (the monitor first
        // fires one interval in). Within a barrier the order is fixed:
        // deaths, boot activations, monitor, evaluate.
        let mut now = SimTime::ZERO;
        self.evaluate(now);
        while now < self.horizon {
            let next = self.next_barrier(now);
            let windows = self.route_window(next);
            self.run_shards(windows, next, false);
            now = next;
            self.collect_window();
            self.activate_boots(now);
            if self.next_monitor == Some(now) {
                self.monitor(now);
            }
            if self.next_eval == Some(now) {
                self.evaluate(now);
            }
        }
        // Drain: expand the rest of the workload (every remaining
        // arrival lies past the horizon), freeze the fleet, stop the
        // failure clocks, and let each shard run dry.
        let windows = self.route_window(SimTime::from_secs(f64::MAX));
        self.run_shards(windows, self.horizon, true);
        self.collect_window();
        let end = self
            .shards
            .iter()
            .map(|s| s.now())
            .fold(self.horizon, SimTime::max);

        // Final reduction, all in ascending VM id: live instances fold
        // after the retired accumulators, then billing.
        let mut response = self.retired_response;
        let mut busy = self.retired_busy;
        let mut qos = self.retired_qos;
        // Settle every live instance's deferred samples before the merge
        // loop; each flush touches only its own VM, so order is free.
        for s in &mut self.shards {
            for v in s.world_mut().vms.iter_mut() {
                v.flush_batch();
            }
        }
        for vm in 0..self.vms.len() as u32 {
            if self.vms[vm as usize].state == MetaState::Active {
                let v = &self.shards[self.shard_of(vm)].world().vms[self.local_of(vm)];
                response.merge(&v.response);
                busy += v.busy_seconds;
                qos += v.qos_violations;
            }
        }
        for (vm, meta) in self.vms.iter().enumerate() {
            match meta.state {
                MetaState::Active | MetaState::Booting => {
                    self.metrics.vm_seconds += end - meta.created_at;
                }
                MetaState::Draining => unreachable!("instance {vm} still draining after drain"),
                MetaState::Dead => {}
            }
        }
        self.metrics.response = response;
        self.metrics.busy_seconds = busy;
        self.metrics.qos_violations = qos;
        for s in &self.shards {
            let w = s.world();
            self.metrics.offered += w.offered;
            self.metrics.rejected += w.rejected;
            self.metrics.offered_high += w.offered_high;
            self.metrics.rejected_high += w.rejected_high;
            self.metrics.instance_failures += w.instance_failures;
            self.metrics.requests_lost_to_failures += w.requests_lost;
        }
        let summary = self.metrics.finalize(end, &self.policy.name());
        (summary, self.probe, self.shards)
    }
}

/// Runs one simulation partitioned over `nshards` shards. The merged
/// [`RunSummary`] is bit-identical for every `nshards ≥ 1` (see the
/// module docs); wall clock shrinks roughly linearly while shard event
/// volume dominates the coordinator's routing work.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<P: Probe, W: ArrivalProcess, D: Dispatcher>(
    cfg: SimConfig,
    workload: W,
    service: ServiceModel,
    policy: Box<dyn ProvisioningPolicy>,
    dispatcher: D,
    rngs: &RngFactory,
    probe: P,
    nshards: u32,
    mut scratch: Option<&mut SimScratch>,
) -> (RunSummary, P) {
    assert!(nshards >= 1, "shard count must be at least 1");
    assert!(
        probe.sample_interval().is_none(),
        "sampling probes are not supported in sharded runs (aggregate \
         pool state is only consistent at barriers); run with shards off"
    );
    assert!(
        !cfg.metrics.histogram,
        "response-time histograms are not supported in sharded runs; \
         run with shards off"
    );
    let routing = match dispatcher.name() {
        "round-robin" => Routing::RoundRobin,
        "random" => Routing::Random,
        other => panic!(
            "dispatcher {other:?} is not supported in sharded runs: its \
             picks depend on live queue state, which is only consistent \
             at barriers; run with shards off"
        ),
    };
    let record = probe.observes_events();
    let horizon = workload.horizon();
    let k = policy.queue_capacity(cfg.initial_service_estimate);

    let mut shard_engines = Vec::with_capacity(nshards as usize);
    let mut warm = match scratch {
        Some(ref mut s) => std::mem::take(&mut s.shard_queues),
        None => Vec::new(),
    };
    for _ in 0..nshards {
        let world = ShardWorld {
            nshards,
            k,
            ts: cfg.qos_ts,
            priority: cfg.priority,
            service_model: service,
            rngs: *rngs,
            vms: Vec::new(),
            window: Vec::new(),
            deaths: Vec::new(),
            offered: 0,
            rejected: 0,
            offered_high: 0,
            rejected_high: 0,
            instance_failures: 0,
            requests_lost: 0,
            record,
            batched: cfg.metrics.stats == StatsMode::Batched,
            log: Vec::new(),
        };
        // Recycled FELs must match the run's backend, as in the serial
        // scratch path; mismatches fall back to fresh storage.
        let engine = match warm.pop() {
            Some(q) if q.backend() == cfg.fel_backend => Engine::with_recycled_queue(world, q),
            _ => Engine::with_backend(world, cfg.fel_backend),
        };
        shard_engines.push(engine);
    }

    let requested = policy.initial_instances();
    let mut coord = Coordinator {
        nshards,
        horizon,
        rng_arrivals: rngs.stream("arrivals"),
        workload,
        pending: Vec::new(),
        pending_pos: 0,
        arrival_run: cfg.arrival_run.max(1) as usize,
        last_batch_time: SimTime::ZERO,
        gen_seq: 0,
        pen: Vec::new(),
        arrival_index: 0,
        window_arrivals: 0,
        policy,
        routing,
        rngs: *rngs,
        hosts: HostPool::new(cfg.hosts, cfg.host_shape, cfg.placement),
        k,
        vms: Vec::new(),
        active: Vec::new(),
        draining: Vec::new(),
        booting: Vec::new(),
        shards: shard_engines,
        metrics: RunMetrics::new(0, cfg.metrics),
        retired_response: OnlineStats::new(),
        retired_service: OnlineStats::new(),
        retired_busy: 0.0,
        retired_qos: 0,
        next_monitor: (cfg.monitor_interval <= horizon.as_secs())
            .then(|| SimTime::from_secs(cfg.monitor_interval)),
        next_eval: None,
        probe,
        record,
        cfg,
    };
    // Initial fleet exists (active) at t = 0, as in the paper; instance
    // tracking starts at its realized size.
    for _ in 0..requested {
        coord.create_instance(SimTime::ZERO, true);
    }
    coord.metrics.instances = TimeWeighted::new(SimTime::ZERO, coord.active.len() as f64);
    // The first burst is pulled lazily by `fill_pen`; the arrivals
    // stream is read nowhere else, so the draw sequence is unchanged.

    let (summary, probe, shards) = coord.run();
    if let Some(s) = scratch {
        // Hand the shard FELs back for the next run on this thread
        // (warm `SimScratch` recycling, as on the serial path).
        s.shard_queues = shards.into_iter().map(|e| e.into_parts().1).collect();
    }
    (summary, probe)
}
