//! Simulation configuration.

use crate::host::{PlacementPolicy, Resources, PAPER_HOST, PAPER_VM};
use crate::metrics::MetricsOptions;
use vmprov_des::FelBackend;

/// Configuration of the simulated data center and measurement set-up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of physical hosts (paper: 1000).
    pub hosts: usize,
    /// Host shape (paper: 8 cores, 16 GB).
    pub host_shape: Resources,
    /// VM shape (paper: 1 core, 2 GB).
    pub vm_shape: Resources,
    /// Host-selection policy for new VMs (paper: least-loaded).
    pub placement: PlacementPolicy,
    /// Seconds between VM creation and readiness (paper/CloudSim
    /// default: 0; the boot-delay ablation sweeps this).
    pub boot_delay: f64,
    /// Monitoring window length in seconds: how often the arrival counter
    /// is reported to the policy's analyzer.
    pub monitor_interval: f64,
    /// Prior for the mean request execution time Tm, used until enough
    /// completions are monitored (the SaaS provider's configured
    /// estimate).
    pub initial_service_estimate: f64,
    /// Prior for the service-time SCV.
    pub initial_scv_estimate: f64,
    /// Response-time bound Ts used for violation counting.
    pub qos_ts: f64,
    /// What the run records beyond the always-on counters (histogram
    /// on/off plus its bounds, p99 toggle).
    pub metrics: MetricsOptions,
    /// Two-class priority admission (the paper's future-work item on
    /// serving high-priority requests first under contention). `None`
    /// disables classes entirely.
    pub priority: Option<PriorityConfig>,
    /// Mean time between failures of one *instance* (exponential), the
    /// "uncertain behavior" of §I. `None` disables failures.
    pub instance_mtbf: Option<f64>,
    /// Future-event-list backend for the engine. The calendar queue is
    /// the default; the binary heap is kept for A/B determinism checks.
    pub fel_backend: FelBackend,
    /// Maximum number of arrival batches pulled from the workload per
    /// `Batch` event and expanded as one bulk FEL insert. `1` (the
    /// default) releases batches one at a time on the exact historical
    /// event cadence; larger values prefetch whole inter-arrival bursts
    /// through [`ArrivalProcess::next_batch_run`], which reassigns
    /// event ids across batch boundaries — equivalent in distribution
    /// (and in every continuous-time scenario, bit-identical summaries;
    /// pinned by tests) but not guaranteed bit-identical when arrivals
    /// tie with control ticks. Sharded runs are bit-identical for every
    /// value.
    pub arrival_run: u32,
    /// How round-robin admission probes the active pool.
    pub admission: AdmissionMode,
}

/// Admission/dispatch probe strategy over the struct-of-arrays instance
/// slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Branch-free: scan per-word has-room bitsets with trailing-zeros
    /// selection. Picks the identical instance as `Branchy` (pinned by
    /// tests), just faster when the pool is large or mostly full.
    #[default]
    Bitset,
    /// The historical per-instance probe loop; kept as the reference
    /// the bitset path is A/B-tested against.
    Branchy,
}

/// Two-class priority admission: a fraction of requests is high
/// priority; low-priority requests may only occupy `k − reserved_slots`
/// of each instance's queue, so the reserved headroom is always
/// available to high-priority traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriorityConfig {
    /// Fraction of arrivals that are high priority, in [0, 1].
    pub high_fraction: f64,
    /// Queue slots per instance reserved for high-priority requests.
    pub reserved_slots: u32,
}

impl PriorityConfig {
    /// Creates a validated config.
    pub fn new(high_fraction: f64, reserved_slots: u32) -> Self {
        assert!((0.0..=1.0).contains(&high_fraction));
        PriorityConfig {
            high_fraction,
            reserved_slots,
        }
    }
}

impl SimConfig {
    /// The paper's data center with the given service-time prior and Ts.
    pub fn paper(initial_service_estimate: f64, qos_ts: f64) -> Self {
        assert!(initial_service_estimate > 0.0 && qos_ts > 0.0);
        SimConfig {
            hosts: 1000,
            host_shape: PAPER_HOST,
            vm_shape: PAPER_VM,
            placement: PlacementPolicy::LeastLoaded,
            boot_delay: 0.0,
            monitor_interval: 60.0,
            initial_service_estimate,
            initial_scv_estimate: 0.00076,
            qos_ts,
            metrics: MetricsOptions::default(),
            priority: None,
            instance_mtbf: None,
            fel_backend: FelBackend::default(),
            arrival_run: 1,
            admission: AdmissionMode::default(),
        }
    }

    /// Paper data center for the web scenario (100 ms requests,
    /// Ts = 250 ms).
    pub fn paper_web() -> Self {
        Self::paper(0.100, 0.250)
    }

    /// Paper data center for the scientific scenario (300 s tasks,
    /// Ts = 700 s).
    pub fn paper_scientific() -> Self {
        Self::paper(300.0, 700.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let w = SimConfig::paper_web();
        assert_eq!(w.hosts, 1000);
        assert_eq!(w.host_shape.cores, 8);
        assert_eq!(w.vm_shape.ram_mb, 2048);
        assert_eq!(w.qos_ts, 0.250);
        assert_eq!(w.arrival_run, 1, "default stays on the scalar cadence");
        assert_eq!(w.admission, AdmissionMode::Bitset);
        let s = SimConfig::paper_scientific();
        assert_eq!(s.initial_service_estimate, 300.0);
        assert_eq!(s.qos_ts, 700.0);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_estimate() {
        SimConfig::paper(0.0, 1.0);
    }

    #[test]
    fn priority_config_validates() {
        let p = PriorityConfig::new(0.2, 1);
        assert_eq!(p.reserved_slots, 1);
        assert!(SimConfig::paper_web().priority.is_none());
    }

    #[test]
    #[should_panic]
    fn priority_fraction_bounds() {
        PriorityConfig::new(1.5, 1);
    }
}
