//! Output metrics of a simulation run — exactly the quantities §V-A
//! collects: average response time and its standard deviation, min/max
//! concurrent instances, VM hours, QoS violations, rejection percentage,
//! and the resource utilization rate (busy time / VM hours).

use vmprov_des::stats::{LogHistogram, OnlineStats, SampleBatch, TimeWeighted};
use vmprov_des::SimTime;
use vmprov_json::{field, field_f64, field_str, field_u64, FromJson, Json, ToJson};

/// How per-completion response/service samples reach the accumulators.
///
/// Follows the [`AdmissionMode`](crate::config::AdmissionMode) /
/// `SamplerBackend` precedent: the default is the historical reference
/// semantics, the alternative is an equivalent-but-not-bit-identical
/// faster path pinned by its own goldens and equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// Fold every sample into the Welford accumulators as it arrives.
    /// Bit-identical to every pre-existing golden.
    #[default]
    Streaming,
    /// Defer samples in a fixed-capacity [`SampleBatch`] and fold them
    /// in 64-sample flushes (vectorizable column reductions + one exact
    /// Chan-style merge). Integer counters, min, and max are exactly
    /// equal to streaming; mean and variance agree up to floating-point
    /// reassociation (≤ 1e-9 relative, pinned by tests).
    Batched,
}

/// Collection knobs for [`RunMetrics`] — what to record beyond the
/// always-on counters, and at what cost.
///
/// Replaces the old bare `bool` histogram flag so new options compose
/// without growing the constructor's positional arguments (the same
/// treatment [`SimBuilder`](crate::SimBuilder) gives the run API).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsOptions {
    /// Record a response-time histogram (required for quantiles).
    /// Measured cost per completion in `quickbench`: 9.1 ns without
    /// (`stats_record_hot`) vs 9.9 ns with (`stats_record_hot_hist`) —
    /// the bit-index fast path (`LogHistogram::record`) hides most of
    /// the bucket increment under the Welford division chain. The
    /// historical `ln()` bucket index cost 13.4 ns per completion at
    /// the same baseline (BENCH_des.json history).
    pub histogram: bool,
    /// `(min, max)` response-time bounds of the histogram in seconds.
    /// Observations outside land in under/overflow buckets.
    pub histogram_bounds: (f64, f64),
    /// Relative bucket width of the histogram (0.01 → 1% resolution).
    pub histogram_resolution: f64,
    /// Report the p99 response time in [`RunSummary`] (requires
    /// `histogram`; with it off the summary's p99 is `None` even when
    /// the histogram was collected).
    pub p99: bool,
    /// How samples reach the accumulators (streaming default).
    pub stats: StatsMode,
}

impl Default for MetricsOptions {
    /// Histogram off (the full-scale default); if enabled later, the
    /// bounds match [`LogHistogram::for_latencies`] (1 µs … ~3 h at 1%).
    fn default() -> Self {
        MetricsOptions {
            histogram: false,
            histogram_bounds: (1e-6, 1.2e4),
            histogram_resolution: 0.01,
            p99: true,
            stats: StatsMode::Streaming,
        }
    }
}

impl MetricsOptions {
    /// Default options with histogram (and hence p99) collection on.
    pub fn with_histogram() -> Self {
        MetricsOptions {
            histogram: true,
            ..MetricsOptions::default()
        }
    }

    /// Builds the configured histogram, if enabled.
    fn build_histogram(&self) -> Option<LogHistogram> {
        self.histogram.then(|| {
            LogHistogram::new(
                self.histogram_bounds.0,
                self.histogram_bounds.1,
                self.histogram_resolution,
            )
        })
    }
}

/// Live metric accumulators updated by the simulation.
#[derive(Debug)]
pub struct RunMetrics {
    /// Response times of accepted requests.
    pub response: OnlineStats,
    /// Service times of completed requests — the monitored Tm/SCV the
    /// G/G/1/k refinement reads at every evaluation.
    pub service: OnlineStats,
    /// Response-time histogram (for quantiles), optional because the
    /// full-scale web run records 5·10⁸ samples and the per-sample
    /// bucket increment is measurable at that volume (see
    /// [`MetricsOptions::histogram`] for the measured cost).
    pub response_hist: Option<LogHistogram>,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Total requests offered (accepted + rejected).
    pub offered: u64,
    /// Accepted requests whose response time exceeded Ts.
    pub qos_violations: u64,
    /// Σ wall-clock seconds of every VM from creation to destruction.
    pub vm_seconds: f64,
    /// Σ service time of completed requests (the numerator of the
    /// utilization rate).
    pub busy_seconds: f64,
    /// Piecewise-constant count of existing (booting/active/draining)
    /// instances.
    pub instances: TimeWeighted,
    /// VMs created over the run (including the initial fleet).
    pub vms_created: u64,
    /// VM creation attempts refused by the host pool (capacity).
    pub vm_creation_failures: u64,
    /// High-priority requests rejected (priority admission only).
    pub rejected_high: u64,
    /// High-priority requests offered.
    pub offered_high: u64,
    /// Instances killed by injected failures.
    pub instance_failures: u64,
    /// Admitted requests lost to instance crashes.
    pub requests_lost_to_failures: u64,
    /// Deferred `(response, service)` samples under
    /// [`StatsMode::Batched`]; always empty under `Streaming`.
    batch: SampleBatch,
    /// The options this run was collected with (needed at finalization
    /// for the p99 toggle and per-completion for the stats mode).
    options: MetricsOptions,
}

impl RunMetrics {
    /// Creates the accumulators at time zero with `initial` instances,
    /// collecting what `options` asks for.
    pub fn new(initial_instances: u32, options: MetricsOptions) -> Self {
        RunMetrics {
            response: OnlineStats::new(),
            service: OnlineStats::new(),
            response_hist: options.build_histogram(),
            batch: SampleBatch::new(),
            rejected: 0,
            offered: 0,
            qos_violations: 0,
            vm_seconds: 0.0,
            busy_seconds: 0.0,
            instances: TimeWeighted::new(SimTime::ZERO, f64::from(initial_instances)),
            vms_created: 0,
            vm_creation_failures: 0,
            rejected_high: 0,
            offered_high: 0,
            instance_failures: 0,
            requests_lost_to_failures: 0,
            options,
        }
    }

    /// Records one accepted request's completion into the response-side
    /// accumulators (the service-time accumulator is the engine's via
    /// [`record_run_completion`](Self::record_run_completion)).
    ///
    /// `inline(always)` (here and on the run-completion wrapper): these
    /// are the per-request sinks on the simulation hot path, and the
    /// histogram / batch bodies are built to overlap with the Welford
    /// fold — LLVM outlines them once a binary accumulates several call
    /// sites, which costs a call per sample and serializes that
    /// overlap.
    #[inline(always)]
    pub fn record_completion(&mut self, response_time: f64, service_time: f64, ts: f64) {
        self.response.push(response_time);
        if let Some(h) = &mut self.response_hist {
            h.record(response_time);
        }
        self.busy_seconds += service_time;
        // Branchless: the violation predicate follows the response-time
        // distribution (essentially a coin flip under mixed load), and
        // a guarded increment mispredicts often enough to be measurable
        // in `stats_record_hot`.
        self.qos_violations += u64::from(response_time > ts);
    }

    /// The engine-facing completion record: response *and* service
    /// accumulators, dispatched on the configured [`StatsMode`].
    ///
    /// Streaming performs exactly the historical operation sequence
    /// ([`record_completion`](Self::record_completion) followed by a
    /// service-time push) and is bit-identical to it. Batched defers
    /// both Welford folds into the sample buffer; counters and the
    /// histogram still update immediately, so only the moment
    /// accumulators can go stale (callers flush before every read —
    /// see [`flush_samples`](Self::flush_samples)).
    #[inline(always)]
    pub fn record_run_completion(&mut self, response_time: f64, service_time: f64, ts: f64) {
        match self.options.stats {
            StatsMode::Streaming => {
                self.record_completion(response_time, service_time, ts);
                self.service.push(service_time);
            }
            StatsMode::Batched => {
                if let Some(h) = &mut self.response_hist {
                    h.record(response_time);
                }
                self.busy_seconds += service_time;
                self.qos_violations += u64::from(response_time > ts);
                if self.batch.push(response_time, service_time) {
                    self.batch.flush_into(&mut self.response, &mut self.service);
                }
            }
        }
    }

    /// Whether no deferred samples are buffered, i.e. accumulator reads
    /// are current (always `true` under [`StatsMode::Streaming`]).
    #[inline]
    pub fn samples_flushed(&self) -> bool {
        self.batch.is_empty()
    }

    /// Folds any deferred samples into the accumulators. Must run
    /// before every read of `response`/`service` (monitor ticks, probe
    /// samples, finalization); a no-op when nothing is buffered (and
    /// therefore always under [`StatsMode::Streaming`]).
    #[inline]
    pub fn flush_samples(&mut self) {
        if !self.batch.is_empty() {
            self.batch.flush_into(&mut self.response, &mut self.service);
        }
    }

    /// Freezes the accumulators into a summary at `end`, flushing any
    /// deferred samples first.
    pub fn finalize(&mut self, end: SimTime, policy: &str) -> RunSummary {
        self.flush_samples();
        let accepted = self.offered - self.rejected;
        RunSummary {
            policy: policy.to_string(),
            end_time: end.as_secs(),
            offered_requests: self.offered,
            accepted_requests: accepted,
            rejected_requests: self.rejected,
            rejection_rate: if self.offered > 0 {
                self.rejected as f64 / self.offered as f64
            } else {
                0.0
            },
            qos_violations: self.qos_violations,
            mean_response_time: self.response.mean(),
            std_response_time: self.response.std_dev(),
            max_response_time: if self.response.count() > 0 {
                self.response.max()
            } else {
                0.0
            },
            p99_response_time: if self.options.p99 {
                self.response_hist.as_ref().and_then(|h| h.quantile(0.99))
            } else {
                None
            },
            min_instances: self.instances.min() as u32,
            max_instances: self.instances.max() as u32,
            mean_instances: self.instances.average(end),
            vm_hours: self.vm_seconds / 3600.0,
            utilization: if self.vm_seconds > 0.0 {
                self.busy_seconds / self.vm_seconds
            } else {
                0.0
            },
            vms_created: self.vms_created,
            vm_creation_failures: self.vm_creation_failures,
            rejected_high: self.rejected_high,
            offered_high: self.offered_high,
            rejection_rate_high: if self.offered_high > 0 {
                self.rejected_high as f64 / self.offered_high as f64
            } else {
                0.0
            },
            rejection_rate_low: {
                let offered_low = self.offered - self.offered_high;
                let rejected_low = self.rejected - self.rejected_high;
                if offered_low > 0 {
                    rejected_low as f64 / offered_low as f64
                } else {
                    0.0
                }
            },
            instance_failures: self.instance_failures,
            requests_lost_to_failures: self.requests_lost_to_failures,
        }
    }
}

/// Final metrics of one simulation run (one policy × one replication).
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Policy name ("Adaptive", "Static-50", …).
    pub policy: String,
    /// Simulated end time (seconds).
    pub end_time: f64,
    /// Requests offered to admission control.
    pub offered_requests: u64,
    /// Requests accepted.
    pub accepted_requests: u64,
    /// Requests rejected.
    pub rejected_requests: u64,
    /// rejected / offered.
    pub rejection_rate: f64,
    /// Accepted requests finishing later than Ts.
    pub qos_violations: u64,
    /// Mean response time of accepted requests (seconds) — Fig 5(d)/6(d).
    pub mean_response_time: f64,
    /// Standard deviation of response times — Fig 5(d)/6(d) error bars.
    pub std_response_time: f64,
    /// Largest observed response time.
    pub max_response_time: f64,
    /// 99th percentile response time when histogram collection was on.
    pub p99_response_time: Option<f64>,
    /// Fewest instances existing at once — Fig 5(a)/6(a).
    pub min_instances: u32,
    /// Most instances existing at once — Fig 5(a)/6(a).
    pub max_instances: u32,
    /// Time-weighted average instance count.
    pub mean_instances: f64,
    /// Σ VM wall-clock hours — Fig 5(c)/6(c).
    pub vm_hours: f64,
    /// busy time / VM time — Fig 5(b)/6(b).
    pub utilization: f64,
    /// VMs created over the run.
    pub vms_created: u64,
    /// VM requests the data center could not place.
    pub vm_creation_failures: u64,
    /// High-priority requests rejected (0 without priority admission).
    pub rejected_high: u64,
    /// High-priority requests offered (0 without priority admission).
    pub offered_high: u64,
    /// rejected_high / offered_high.
    pub rejection_rate_high: f64,
    /// Low-priority rejection rate, derived by subtraction:
    /// (rejected − rejected_high) / (offered − offered_high). Without
    /// priority admission every request counts as low-priority (the
    /// high counters stay 0), so this equals `rejection_rate` — it is
    /// *not* an independently sampled rate.
    pub rejection_rate_low: f64,
    /// Instances killed by injected failures.
    pub instance_failures: u64,
    /// Admitted requests lost to instance crashes.
    pub requests_lost_to_failures: u64,
}

impl ToJson for RunSummary {
    fn to_json(&self) -> Json {
        Json::obj([
            ("policy", Json::from(self.policy.clone())),
            ("end_time", Json::from(self.end_time)),
            ("offered_requests", Json::from(self.offered_requests)),
            ("accepted_requests", Json::from(self.accepted_requests)),
            ("rejected_requests", Json::from(self.rejected_requests)),
            ("rejection_rate", Json::from(self.rejection_rate)),
            ("qos_violations", Json::from(self.qos_violations)),
            ("mean_response_time", Json::from(self.mean_response_time)),
            ("std_response_time", Json::from(self.std_response_time)),
            ("max_response_time", Json::from(self.max_response_time)),
            ("p99_response_time", Json::from(self.p99_response_time)),
            ("min_instances", Json::from(self.min_instances)),
            ("max_instances", Json::from(self.max_instances)),
            ("mean_instances", Json::from(self.mean_instances)),
            ("vm_hours", Json::from(self.vm_hours)),
            ("utilization", Json::from(self.utilization)),
            ("vms_created", Json::from(self.vms_created)),
            (
                "vm_creation_failures",
                Json::from(self.vm_creation_failures),
            ),
            ("rejected_high", Json::from(self.rejected_high)),
            ("offered_high", Json::from(self.offered_high)),
            ("rejection_rate_high", Json::from(self.rejection_rate_high)),
            ("rejection_rate_low", Json::from(self.rejection_rate_low)),
            ("instance_failures", Json::from(self.instance_failures)),
            (
                "requests_lost_to_failures",
                Json::from(self.requests_lost_to_failures),
            ),
        ])
    }
}

impl FromJson for RunSummary {
    fn from_json(v: &Json) -> Result<Self, String> {
        let u32_field = |key: &str| -> Result<u32, String> {
            u32::try_from(field_u64(v, key)?).map_err(|_| format!("field `{key}` overflows u32"))
        };
        Ok(RunSummary {
            policy: field_str(v, "policy")?,
            end_time: field_f64(v, "end_time")?,
            offered_requests: field_u64(v, "offered_requests")?,
            accepted_requests: field_u64(v, "accepted_requests")?,
            rejected_requests: field_u64(v, "rejected_requests")?,
            rejection_rate: field_f64(v, "rejection_rate")?,
            qos_violations: field_u64(v, "qos_violations")?,
            mean_response_time: field_f64(v, "mean_response_time")?,
            std_response_time: field_f64(v, "std_response_time")?,
            max_response_time: field_f64(v, "max_response_time")?,
            p99_response_time: match field(v, "p99_response_time")? {
                Json::Null => None,
                other => Some(
                    other
                        .as_f64()
                        .ok_or_else(|| "field `p99_response_time` is not a number".to_string())?,
                ),
            },
            min_instances: u32_field("min_instances")?,
            max_instances: u32_field("max_instances")?,
            mean_instances: field_f64(v, "mean_instances")?,
            vm_hours: field_f64(v, "vm_hours")?,
            utilization: field_f64(v, "utilization")?,
            vms_created: field_u64(v, "vms_created")?,
            vm_creation_failures: field_u64(v, "vm_creation_failures")?,
            rejected_high: field_u64(v, "rejected_high")?,
            offered_high: field_u64(v, "offered_high")?,
            rejection_rate_high: field_f64(v, "rejection_rate_high")?,
            rejection_rate_low: field_f64(v, "rejection_rate_low")?,
            instance_failures: field_u64(v, "instance_failures")?,
            requests_lost_to_failures: field_u64(v, "requests_lost_to_failures")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_derivations() {
        let mut m = RunMetrics::new(2, MetricsOptions::with_histogram());
        m.offered = 10;
        m.rejected = 2;
        m.record_completion(0.2, 0.1, 0.25);
        m.record_completion(0.3, 0.1, 0.25); // violation
        m.vm_seconds = 7200.0;
        m.instances.update(SimTime::from_secs(100.0), 5.0);
        let s = m.finalize(SimTime::from_secs(200.0), "Test");
        assert_eq!(s.policy, "Test");
        assert_eq!(s.accepted_requests, 8);
        assert!((s.rejection_rate - 0.2).abs() < 1e-12);
        assert_eq!(s.qos_violations, 1);
        assert!((s.mean_response_time - 0.25).abs() < 1e-12);
        assert_eq!(s.min_instances, 2);
        assert_eq!(s.max_instances, 5);
        assert!((s.vm_hours - 2.0).abs() < 1e-12);
        assert!((s.utilization - 0.2 / 7200.0).abs() < 1e-12);
        assert!(s.p99_response_time.is_some());
    }

    #[test]
    fn summary_json_round_trips() {
        let mut m = RunMetrics::new(2, MetricsOptions::with_histogram());
        m.offered = 10;
        m.rejected = 2;
        m.record_completion(0.2, 0.1, 0.25);
        m.vm_seconds = 7200.0;
        m.instances.update(SimTime::from_secs(100.0), 5.0);
        let s = m.finalize(SimTime::from_secs(200.0), "Test");
        let text = s.to_json().to_string_pretty();
        let back = RunSummary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // And the Option field serializes as null when absent.
        let empty =
            RunMetrics::new(1, MetricsOptions::default()).finalize(SimTime::from_secs(1.0), "E");
        let back =
            RunSummary::from_json(&Json::parse(&empty.to_json().to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(back.p99_response_time, None);
    }

    #[test]
    fn empty_run_is_well_defined() {
        let mut m = RunMetrics::new(1, MetricsOptions::default());
        let s = m.finalize(SimTime::from_secs(10.0), "Empty");
        assert_eq!(s.offered_requests, 0);
        assert_eq!(s.rejection_rate, 0.0);
        assert_eq!(s.utilization, 0.0);
        assert_eq!(s.mean_response_time, 0.0);
        assert!(s.p99_response_time.is_none());
    }

    #[test]
    fn histogram_can_be_disabled() {
        let mut m = RunMetrics::new(1, MetricsOptions::default());
        m.record_completion(0.1, 0.1, 1.0);
        assert!(m.response_hist.is_none());
        assert_eq!(m.response.count(), 1);
    }

    #[test]
    fn p99_toggle_suppresses_quantile_but_not_histogram() {
        let mut m = RunMetrics::new(
            1,
            MetricsOptions {
                p99: false,
                ..MetricsOptions::with_histogram()
            },
        );
        m.offered = 1;
        m.record_completion(0.1, 0.1, 1.0);
        assert!(m.response_hist.is_some(), "histogram still collected");
        let s = m.finalize(SimTime::from_secs(1.0), "T");
        assert_eq!(s.p99_response_time, None, "p99 toggled off");
    }

    #[test]
    fn custom_histogram_bounds_are_honoured() {
        let mut m = RunMetrics::new(
            1,
            MetricsOptions {
                histogram: true,
                histogram_bounds: (1e-3, 10.0),
                histogram_resolution: 0.05,
                p99: true,
                stats: StatsMode::Streaming,
            },
        );
        for _ in 0..100 {
            m.record_completion(0.5, 0.5, 1.0);
        }
        let p99 = m
            .finalize(SimTime::from_secs(1.0), "T")
            .p99_response_time
            .expect("quantile available");
        assert!((p99 - 0.5).abs() < 0.5 * 0.06, "p99 {p99} within 5% bucket");
    }

    #[test]
    fn priority_rejection_rates_derive_by_subtraction() {
        // 10 offered = 4 high + 6 low; 3 rejected = 1 high + 2 low.
        let mut m = RunMetrics::new(1, MetricsOptions::default());
        m.offered = 10;
        m.rejected = 3;
        m.offered_high = 4;
        m.rejected_high = 1;
        let s = m.finalize(SimTime::from_secs(1.0), "P");
        assert!((s.rejection_rate_high - 1.0 / 4.0).abs() < 1e-12);
        // Low = (rejected − rejected_high) / (offered − offered_high).
        assert!((s.rejection_rate_low - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.rejection_rate - 3.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn without_priority_low_rate_equals_overall() {
        // With zero high-priority traffic all requests are low-priority,
        // so the subtraction-derived low rate collapses to the overall.
        let mut m = RunMetrics::new(1, MetricsOptions::default());
        m.offered = 8;
        m.rejected = 2;
        let s = m.finalize(SimTime::from_secs(1.0), "P");
        assert_eq!(s.rejection_rate_high, 0.0);
        assert!((s.rejection_rate_low - s.rejection_rate).abs() < 1e-12);
        assert!((s.rejection_rate - 0.25).abs() < 1e-12);
    }

    #[test]
    fn batched_mode_matches_streaming_within_tolerance() {
        // Counters, min, max exactly equal; mean/std within 1e-9
        // relative — on a sample count that exercises both full-batch
        // flushes and a partial tail (1000 = 15 × 64 + 40).
        let mut stream = RunMetrics::new(1, MetricsOptions::default());
        let mut batched = RunMetrics::new(
            1,
            MetricsOptions {
                stats: StatsMode::Batched,
                ..MetricsOptions::default()
            },
        );
        for i in 0..1000u64 {
            let r = 0.05 + ((i * 37) % 101) as f64 * 3e-3;
            let svc = 0.02 + ((i * 13) % 53) as f64 * 1e-3;
            stream.record_run_completion(r, svc, 0.25);
            batched.record_run_completion(r, svc, 0.25);
        }
        batched.flush_samples();
        assert_eq!(batched.response.count(), stream.response.count());
        assert_eq!(batched.service.count(), stream.service.count());
        assert_eq!(batched.qos_violations, stream.qos_violations);
        assert_eq!(batched.response.min(), stream.response.min());
        assert_eq!(batched.response.max(), stream.response.max());
        assert_eq!(batched.busy_seconds, stream.busy_seconds);
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-300);
        assert!(rel(batched.response.mean(), stream.response.mean()) < 1e-9);
        assert!(rel(batched.response.std_dev(), stream.response.std_dev()) < 1e-9);
        assert!(rel(batched.service.mean(), stream.service.mean()) < 1e-9);
        assert!(rel(batched.service.std_dev(), stream.service.std_dev()) < 1e-9);
    }

    #[test]
    fn finalize_flushes_deferred_samples() {
        // A partial batch (fewer than 64 samples) must still reach the
        // summary: finalize flushes before reading the accumulators.
        let mut m = RunMetrics::new(
            1,
            MetricsOptions {
                stats: StatsMode::Batched,
                ..MetricsOptions::default()
            },
        );
        m.offered = 3;
        for r in [0.1, 0.2, 0.3] {
            m.record_run_completion(r, 0.1, 0.25);
        }
        let s = m.finalize(SimTime::from_secs(10.0), "B");
        assert!((s.mean_response_time - 0.2).abs() < 1e-12);
        assert_eq!(s.max_response_time, 0.3);
        assert_eq!(s.qos_violations, 1);
    }

    #[test]
    fn streaming_run_completion_is_bit_identical_to_legacy_sequence() {
        // The engine's historical operation order was record_completion
        // followed by a separate service-stats push; the streaming arm
        // of record_run_completion must reproduce it exactly.
        let mut legacy = RunMetrics::new(1, MetricsOptions::default());
        let mut unified = RunMetrics::new(1, MetricsOptions::default());
        for i in 0..200u64 {
            let r = 0.09 + (i % 7) as f64 * 0.011;
            let svc = 0.08 + (i % 5) as f64 * 0.007;
            legacy.record_completion(r, svc, 0.25);
            legacy.service.push(svc);
            unified.record_run_completion(r, svc, 0.25);
        }
        assert_eq!(
            legacy.response.mean().to_bits(),
            unified.response.mean().to_bits()
        );
        assert_eq!(
            legacy.response.std_dev().to_bits(),
            unified.response.std_dev().to_bits()
        );
        assert_eq!(
            legacy.service.mean().to_bits(),
            unified.service.mean().to_bits()
        );
        assert_eq!(
            legacy.service.std_dev().to_bits(),
            unified.service.std_dev().to_bits()
        );
    }

    #[test]
    fn summary_json_round_trips_every_field() {
        // A summary with every field set to a distinct, non-default
        // value — including Some(p99) and the priority/failure counters
        // — survives ToJson → parse → FromJson bit-identically.
        let s = RunSummary {
            policy: "Adaptive".to_string(),
            end_time: 604800.5,
            offered_requests: 1_000_001,
            accepted_requests: 999_900,
            rejected_requests: 101,
            rejection_rate: 101.0 / 1_000_001.0,
            qos_violations: 37,
            mean_response_time: 0.1375,
            std_response_time: 0.0421,
            max_response_time: 3.25,
            p99_response_time: Some(0.9875),
            min_instances: 7,
            max_instances: 153,
            mean_instances: 88.125,
            vm_hours: 12345.678,
            utilization: 0.8125,
            vms_created: 412,
            vm_creation_failures: 3,
            rejected_high: 11,
            offered_high: 300_000,
            rejection_rate_high: 11.0 / 300_000.0,
            rejection_rate_low: 90.0 / 700_001.0,
            instance_failures: 9,
            requests_lost_to_failures: 23,
        };
        let text = s.to_json().to_string_pretty();
        let back = RunSummary::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
        // Same through the compact form.
        let compact =
            RunSummary::from_json(&Json::parse(&s.to_json().to_string_compact()).unwrap()).unwrap();
        assert_eq!(compact, s);
    }
}
