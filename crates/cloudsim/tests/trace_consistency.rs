//! The event trace and the run summary are two views of one run — the
//! counters folded out of the JSONL trace must agree bit-for-bit with
//! the [`RunSummary`], on both future-event-list backends.

use vmprov_cloudsim::config::PriorityConfig;
use vmprov_cloudsim::{RunSummary, SimBuilder, SimConfig, TraceProbe};
use vmprov_core::analyzer::SlidingWindowAnalyzer;
use vmprov_core::modeler::{ModelerOptions, PerformanceModeler};
use vmprov_core::policy::AdaptivePolicy;
use vmprov_core::qos::QosTargets;
use vmprov_core::RoundRobin;
use vmprov_des::{FelBackend, RngFactory, SimTime};
use vmprov_json::Json;
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::ServiceModel;

/// The counters a trace folds down to.
#[derive(Debug, Default, PartialEq, Eq)]
struct Folded {
    offered: u64,
    accepted: u64,
    rejected: u64,
    vms_created: u64,
    instance_failures: u64,
    requests_lost_to_failures: u64,
    completions: u64,
}

fn fold(trace: &str) -> Folded {
    let mut f = Folded::default();
    for line in trace.lines() {
        let v = Json::parse(line).expect("every trace line is valid JSON");
        match v.get("ev").and_then(Json::as_str).expect("ev field") {
            "arrival" => f.offered += 1,
            "admit" => f.accepted += 1,
            "reject" => f.rejected += 1,
            "vm_boot" => f.vms_created += 1,
            "vm_crash" => {
                f.instance_failures += 1;
                f.requests_lost_to_failures +=
                    v.get("lost_requests").and_then(Json::as_u64).unwrap_or(0);
            }
            "service_complete" => f.completions += 1,
            _ => {}
        }
    }
    f
}

/// A deliberately eventful scenario: priority classes, injected
/// crashes, and an adaptive policy scaling a small pool under load, so
/// every counter in the fold is non-trivially exercised.
fn run_traced(backend: FelBackend, seed: u64) -> (RunSummary, String) {
    let mut cfg = SimConfig {
        hosts: 50,
        monitor_interval: 10.0,
        ..SimConfig::paper(0.100, 0.250)
    };
    cfg.priority = Some(PriorityConfig::new(0.20, 1));
    cfg.instance_mtbf = Some(120.0);
    cfg.fel_backend = backend;
    let qos = QosTargets::web_paper();
    let modeler = PerformanceModeler::new(qos, 500, ModelerOptions::default());
    let policy = AdaptivePolicy::new(
        Box::new(SlidingWindowAnalyzer::new(5, 3.0, 30.0)),
        modeler,
        60.0,
        3,
    );
    let (summary, trace) = SimBuilder::new(cfg)
        .workload(Box::new(PoissonProcess::new(
            60.0,
            SimTime::from_secs(600.0),
        )))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(policy))
        .dispatcher(Box::new(RoundRobin::new()))
        .probe(TraceProbe::new(Vec::new()))
        .run_probed(&RngFactory::new(seed));
    let text = String::from_utf8(trace.into_inner()).expect("trace is UTF-8");
    (summary, text)
}

#[test]
fn trace_counters_match_summary_on_both_fel_backends() {
    let (cal_summary, cal_trace) = run_traced(FelBackend::Calendar, 77);
    let (heap_summary, heap_trace) = run_traced(FelBackend::BinaryHeap, 77);

    // The two backends replay the same history…
    assert_eq!(cal_summary, heap_summary, "FEL backends must agree");
    assert_eq!(cal_trace, heap_trace, "…down to the event trace");

    // …and the trace folds back to the summary's counters exactly.
    for (label, summary, trace) in [
        ("calendar", &cal_summary, &cal_trace),
        ("binary-heap", &heap_summary, &heap_trace),
    ] {
        let f = fold(trace);
        assert_eq!(f.offered, summary.offered_requests, "{label}: offered");
        assert_eq!(f.accepted, summary.accepted_requests, "{label}: accepted");
        assert_eq!(f.rejected, summary.rejected_requests, "{label}: rejected");
        assert_eq!(f.vms_created, summary.vms_created, "{label}: vms_created");
        assert_eq!(
            f.instance_failures, summary.instance_failures,
            "{label}: instance_failures"
        );
        assert_eq!(
            f.requests_lost_to_failures, summary.requests_lost_to_failures,
            "{label}: requests_lost_to_failures"
        );
        // Completions + in-flight losses account for every admission.
        assert_eq!(
            f.completions + f.requests_lost_to_failures,
            f.accepted,
            "{label}: accepted requests either complete or die with a crash"
        );
        // The scenario actually exercised the interesting paths.
        assert!(f.rejected > 0, "{label}: expected some rejections");
        assert!(f.instance_failures > 0, "{label}: expected some crashes");
    }
}
