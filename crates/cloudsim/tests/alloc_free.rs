//! The steady-state event loop must not allocate.
//!
//! Slot free lists, the flat queue slab, and calendar-queue storage
//! reuse exist so that once the pool and the FEL have warmed up, a
//! running simulation touches no allocator at all. This test proves it
//! with a counting `#[global_allocator]`: a probe records the global
//! allocation count when simulated time first passes the start and the
//! end of a steady-state window, and the two counts must be equal.
//!
//! The run is fully seeded, so the allocation sequence is deterministic
//! — this is a regression test, not a statistical one. The window
//! starts after half the horizon: by then the instance pool is at its
//! static size, every per-slot queue ring has been allocated, metric
//! accumulators are plain scalars, and the calendar queue's buckets
//! have grown to their high-water capacities.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use vmprov_cloudsim::{Probe, RequestClass, SimBuilder, SimConfig};
use vmprov_core::qos::QosTargets;
use vmprov_core::{RoundRobin, StaticPolicy};
use vmprov_des::{RngFactory, SimTime};
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::ServiceModel;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is an allocation for this test's purposes: growing a
        // Vec in the hot loop is exactly what must not happen.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Snapshots the allocation counter the first time simulated time
/// crosses `start` and then `end`. Arrivals fire every few simulated
/// milliseconds at the rates used here, so the snapshots land within
/// one event of the window edges. The probe itself is allocation-free
/// (two `Option<u64>` fields) and returns no `sample_interval`, so
/// attaching it changes nothing about the event stream.
#[derive(Default)]
struct WindowMarker {
    start: f64,
    end: f64,
    at_start: Option<u64>,
    at_end: Option<u64>,
}

impl Probe for WindowMarker {
    fn on_arrival(&mut self, now: SimTime, _class: RequestClass) {
        let t = now.as_secs();
        if self.at_start.is_none() && t >= self.start {
            self.at_start = Some(ALLOCATIONS.load(Ordering::Relaxed));
        } else if self.at_start.is_some() && self.at_end.is_none() && t >= self.end {
            self.at_end = Some(ALLOCATIONS.load(Ordering::Relaxed));
        }
    }
}

#[test]
fn steady_state_event_loop_is_allocation_free() {
    let cfg = SimConfig {
        hosts: 50,
        monitor_interval: 10.0,
        ..SimConfig::paper(0.100, 0.250)
    };
    let horizon = 600.0;
    let marker = WindowMarker {
        start: horizon / 2.0,
        end: horizon * 0.9,
        ..WindowMarker::default()
    };
    let (summary, marker) = SimBuilder::new(cfg)
        .workload(Box::new(PoissonProcess::new(
            50.0,
            SimTime::from_secs(horizon),
        )))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(8, QosTargets::web_paper())))
        .dispatcher(Box::new(RoundRobin::new()))
        .probe(marker)
        .run_probed(&RngFactory::new(0xA110C));
    assert!(summary.offered_requests > 10_000, "window saw real load");
    let at_start = marker.at_start.expect("window start was reached");
    let at_end = marker.at_end.expect("window end was reached");
    assert_eq!(
        at_end - at_start,
        0,
        "the steady-state loop allocated {} times in the [{}s, {}s) window",
        at_end - at_start,
        horizon / 2.0,
        horizon * 0.9,
    );
}
