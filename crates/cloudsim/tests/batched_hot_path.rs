//! Equivalence pins for the batched request hot path (arrival-burst
//! prefetch + calendar bulk insert + bitset admission):
//!
//! * On continuous-time workloads (Poisson, web) the batched arrival
//!   path is **bit-identical** to the scalar cadence for every prefetch
//!   depth, on both FEL backends — arrival times are a deterministic
//!   multiset and `Arrival` events carry no payload, so reassigning
//!   insertion ids within a sorted run is unobservable.
//! * The sharded engine is arrival-run-invariant outright: the
//!   coordinator expands bursts into the pen in generation order, so
//!   the prefetch depth can never reorder anything.
//! * Bitset admission (trailing-zeros scan over the k-full bitmap)
//!   picks the identical instance as the branchy ring probe at every
//!   arrival, over randomized k / fleet-size grids, with and without
//!   priority reservations.

use vmprov_cloudsim::config::PriorityConfig;
use vmprov_cloudsim::{AdmissionMode, RunSummary, SimBuilder, SimConfig};
use vmprov_core::policy::{PoolStatus, ProvisioningPolicy};
use vmprov_core::qos::QosTargets;
use vmprov_core::{RoundRobin, StaticPolicy};
use vmprov_des::{FelBackend, RngFactory, SimTime};
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::{ServiceModel, WebConfig, WebWorkload};

const BACKENDS: [FelBackend; 2] = [FelBackend::Calendar, FelBackend::BinaryHeap];
const RUNS: [u32; 3] = [1, 7, 64];

/// A static fleet with an explicitly pinned per-instance queue
/// capacity, so the admission grid can sweep k directly.
struct FixedPool {
    m: u32,
    k: u32,
}

impl ProvisioningPolicy for FixedPool {
    fn name(&self) -> String {
        format!("FixedPool-{}x{}", self.m, self.k)
    }

    fn initial_instances(&self) -> u32 {
        self.m
    }

    fn evaluate(&mut self, _status: &PoolStatus) -> u32 {
        self.m
    }

    fn next_evaluation(&self, now: SimTime) -> SimTime {
        now + 60.0
    }

    fn queue_capacity(&self, _tm: f64) -> u32 {
        self.k
    }
}

fn run_poisson(backend: FelBackend, arrival_run: u32) -> RunSummary {
    SimBuilder::new(SimConfig::paper(0.100, 0.250))
        .workload(PoissonProcess::new(150.0, SimTime::from_secs(600.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(20, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .fel_backend(backend)
        .arrival_run(arrival_run)
        .run(&RngFactory::new(0xBA7C))
}

fn run_web(backend: FelBackend, arrival_run: u32, seed: u64) -> RunSummary {
    let cfg = SimConfig {
        fel_backend: backend,
        ..SimConfig::paper_web()
    };
    SimBuilder::new(cfg)
        .workload(WebWorkload::new(WebConfig {
            horizon: SimTime::from_secs(1800.0),
            ..WebConfig::default()
        }))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(60, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .arrival_run(arrival_run)
        .run(&RngFactory::new(seed))
}

/// Poisson arrivals: every prefetch depth × both FEL backends must
/// reproduce the scalar run bit for bit.
#[test]
fn batched_arrivals_match_scalar_poisson() {
    for backend in BACKENDS {
        let scalar = run_poisson(backend, 1);
        assert!(scalar.offered_requests > 10_000, "run too small to pin");
        for run in RUNS {
            assert_eq!(
                scalar,
                run_poisson(backend, run),
                "{backend:?}: arrival_run={run} diverged from scalar"
            );
        }
    }
}

/// The web workload's spread batches (count > 1 with intra-batch
/// uniform spread) exercise the sorted bulk-expansion path; batched
/// prefetch must still be bit-identical.
#[test]
fn batched_arrivals_match_scalar_web() {
    for backend in BACKENDS {
        let scalar = run_web(backend, 1, 1109);
        assert!(scalar.offered_requests > 10_000, "run too small to pin");
        for run in RUNS {
            assert_eq!(
                scalar,
                run_web(backend, run, 1109),
                "{backend:?}: web arrival_run={run} diverged from scalar"
            );
        }
    }
}

/// The sharded engine expands bursts into the arrival pen in generation
/// order, so its merged summary is invariant to the prefetch depth —
/// for every shard count.
#[test]
fn sharded_runs_are_arrival_run_invariant() {
    let run_sharded = |shards: u32, arrival_run: u32| {
        let cfg = SimConfig {
            hosts: 50,
            ..SimConfig::paper(0.100, 0.250)
        };
        SimBuilder::new(cfg)
            .workload(PoissonProcess::new(200.0, SimTime::from_secs(300.0)))
            .service(ServiceModel::new(0.100, 0.10))
            .policy(Box::new(StaticPolicy::new(25, QosTargets::web_paper())))
            .dispatcher(RoundRobin::new())
            .shards(Some(shards))
            .arrival_run(arrival_run)
            .run(&RngFactory::new(0x5AD))
    };
    for shards in [1, 4] {
        let reference = run_sharded(shards, 1);
        assert!(reference.offered_requests > 10_000);
        for run in [7, 64] {
            assert_eq!(
                reference,
                run_sharded(shards, run),
                "shards={shards}: arrival_run={run} changed the merged summary"
            );
        }
    }
}

/// Bitset admission must make the same pick as the branchy ring probe
/// at every arrival, across a randomized grid of queue capacities,
/// fleet sizes (straddling the 64-bit word boundary), and loads.
#[test]
fn bitset_admission_matches_branchy_grid() {
    let mut grid_rng = RngFactory::new(0xB175E7).stream("grid");
    for (k, m) in [(1u32, 3u32), (2, 17), (5, 63), (5, 64), (10, 70), (3, 128)] {
        // A load high enough that queues fill (so the k-full bit
        // actually clears and sets) but finite, drawn per cell.
        let rho = 0.7 + 0.25 * grid_rng.uniform01();
        let rate = rho * m as f64 / 0.100;
        let cfg = SimConfig {
            hosts: 200,
            ..SimConfig::paper(0.100, 0.250)
        };
        let run = |admission| {
            SimBuilder::new(cfg)
                .workload(PoissonProcess::new(rate, SimTime::from_secs(120.0)))
                .service(ServiceModel::new(0.100, 0.10))
                .policy(Box::new(FixedPool { m, k }))
                .dispatcher(RoundRobin::new())
                .admission(admission)
                .run(&RngFactory::new(0x9A7E ^ u64::from(k * 1000 + m)))
        };
        let bitset = run(AdmissionMode::Bitset);
        let branchy = run(AdmissionMode::Branchy);
        assert!(bitset.offered_requests > 1_000, "k={k} m={m}: tiny run");
        assert_eq!(bitset, branchy, "k={k} m={m}: admission modes diverged");
    }
}

/// With a priority reservation the low class scans a shrunk capacity
/// (the branchy path) while the high class still sees the exact bitmap;
/// both admission modes must agree on every metric, including the
/// per-class rejection split.
#[test]
fn bitset_admission_matches_branchy_with_priority() {
    let cfg = SimConfig {
        hosts: 100,
        priority: Some(PriorityConfig::new(0.3, 2)),
        ..SimConfig::paper(0.100, 0.250)
    };
    let run = |admission| {
        SimBuilder::new(cfg)
            .workload(PoissonProcess::new(280.0, SimTime::from_secs(300.0)))
            .service(ServiceModel::new(0.100, 0.10))
            .policy(Box::new(FixedPool { m: 30, k: 5 }))
            .dispatcher(RoundRobin::new())
            .admission(admission)
            .run(&RngFactory::new(0xC1A55))
    };
    let bitset = run(AdmissionMode::Bitset);
    let branchy = run(AdmissionMode::Branchy);
    assert!(bitset.offered_high > 1_000, "no high-priority traffic");
    assert_eq!(bitset, branchy, "priority split diverged across modes");
}
