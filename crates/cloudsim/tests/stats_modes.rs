//! Equivalence pins for the deferred per-request bookkeeping
//! (`StatsMode::Batched`) and the draining swap-remove index:
//!
//! * Under a fixed fleet the batched stats sink changes **only** the
//!   float fold order of the response/service moments: every integer
//!   counter, the min/max, and the billing sums must match the
//!   streaming run exactly, and the Welford moments must agree within
//!   float-reassociation tolerance (1e-9 relative) — on both FEL
//!   backends, serial and sharded.
//! * A policy that oscillates the target every tick churns the
//!   draining list (drain → revive → drain, with failures landing
//!   mid-list), exercising the O(1) swap-remove path; runs must stay
//!   deterministic and FEL-backend identical under that churn.

use vmprov_cloudsim::{RunSummary, SimBuilder, SimConfig, StatsMode};
use vmprov_core::policy::{PoolStatus, ProvisioningPolicy};
use vmprov_core::qos::QosTargets;
use vmprov_core::{RoundRobin, StaticPolicy};
use vmprov_des::{FelBackend, RngFactory, SimTime};
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::ServiceModel;

const BACKENDS: [FelBackend; 2] = [FelBackend::Calendar, FelBackend::BinaryHeap];

fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1e-300);
    (a - b).abs() / scale <= tol
}

/// Everything except the two Welford moments must be *exact* across
/// stats modes; the moments must agree to 1e-9 relative.
fn assert_statistically_equal(streaming: &RunSummary, batched: &RunSummary, label: &str) {
    let mut s = streaming.clone();
    let mut b = batched.clone();
    assert!(
        rel_close(s.mean_response_time, b.mean_response_time, 1e-9),
        "{label}: mean {} vs {}",
        s.mean_response_time,
        b.mean_response_time
    );
    assert!(
        rel_close(s.std_response_time, b.std_response_time, 1e-9),
        "{label}: std {} vs {}",
        s.std_response_time,
        b.std_response_time
    );
    // With the moments neutralized the summaries must be bit-identical:
    // counts, rejections, QoS violations, min/max, billing, failures.
    s.mean_response_time = 0.0;
    s.std_response_time = 0.0;
    b.mean_response_time = 0.0;
    b.std_response_time = 0.0;
    assert_eq!(
        s, b,
        "{label}: non-moment fields diverged across stats modes"
    );
}

fn run_static(backend: FelBackend, mode: StatsMode, shards: Option<u32>) -> RunSummary {
    let cfg = SimConfig {
        hosts: 100,
        instance_mtbf: Some(200.0),
        ..SimConfig::paper(0.100, 0.250)
    };
    SimBuilder::new(cfg)
        .workload(PoissonProcess::new(180.0, SimTime::from_secs(600.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(25, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .fel_backend(backend)
        .stats_mode(mode)
        .shards(shards)
        .run(&RngFactory::new(0x57A75))
}

/// Serial engine: batched vs streaming on both FEL backends. The fixed
/// fleet keeps the event schedule independent of the accumulators, so
/// every non-moment field is exact.
#[test]
fn batched_stats_match_streaming_serial() {
    for backend in BACKENDS {
        let streaming = run_static(backend, StatsMode::Streaming, None);
        assert!(streaming.offered_requests > 50_000, "run too small to pin");
        assert!(streaming.instance_failures > 0, "failure path never ran");
        let batched = run_static(backend, StatsMode::Batched, None);
        assert_statistically_equal(&streaming, &batched, &format!("serial {backend:?}"));
    }
}

/// Sharded engine: per-VM batches flush on their own completion
/// sequence, so the merged summary is shard-count invariant and
/// statistically equal to the sharded streaming run.
#[test]
fn batched_stats_match_streaming_sharded() {
    let streaming = run_static(FelBackend::Calendar, StatsMode::Streaming, Some(1));
    let batched_1 = run_static(FelBackend::Calendar, StatsMode::Batched, Some(1));
    assert_statistically_equal(&streaming, &batched_1, "sharded n=1");
    for n in [2u32, 4] {
        assert_eq!(
            batched_1,
            run_static(FelBackend::Calendar, StatsMode::Batched, Some(n)),
            "batched sharded run diverged between 1 and {n} shards"
        );
    }
}

/// A target that flips between a wide and a narrow fleet every
/// evaluation, so instances continuously drain, revive, and die from
/// the middle of the draining list.
struct Oscillator {
    high: u32,
    low: u32,
    tick: u32,
}

impl ProvisioningPolicy for Oscillator {
    fn name(&self) -> String {
        format!("Oscillator-{}-{}", self.high, self.low)
    }

    fn initial_instances(&self) -> u32 {
        self.high
    }

    fn evaluate(&mut self, _status: &PoolStatus) -> u32 {
        self.tick += 1;
        if self.tick.is_multiple_of(2) {
            self.high
        } else {
            self.low
        }
    }

    fn next_evaluation(&self, now: SimTime) -> SimTime {
        now + 30.0
    }

    fn queue_capacity(&self, _tm: f64) -> u32 {
        5
    }
}

fn run_churn(backend: FelBackend, mode: StatsMode) -> RunSummary {
    let cfg = SimConfig {
        hosts: 100,
        instance_mtbf: Some(150.0),
        ..SimConfig::paper(0.100, 0.250)
    };
    SimBuilder::new(cfg)
        .workload(PoissonProcess::new(160.0, SimTime::from_secs(600.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(Oscillator {
            high: 30,
            low: 8,
            tick: 0,
        }))
        .dispatcher(RoundRobin::new())
        .fel_backend(backend)
        .stats_mode(mode)
        .run(&RngFactory::new(0xD4A1))
}

/// Drain-churn regression: the draining list is removed from at three
/// sites (revive pop, drain-empty death, mid-drain failure); the
/// position-indexed swap-remove must keep all of them deterministic
/// and identical across FEL backends, in both stats modes.
#[test]
fn drain_churn_is_deterministic_across_backends() {
    for mode in [StatsMode::Streaming, StatsMode::Batched] {
        let calendar = run_churn(FelBackend::Calendar, mode);
        // The churn has to actually happen for this pin to mean
        // anything: far more boots than the steady fleet, and failures
        // that can land while instances drain.
        assert!(
            calendar.vms_created > 100,
            "{mode:?}: only {} boots — the target never oscillated",
            calendar.vms_created
        );
        assert!(
            calendar.instance_failures > 0,
            "{mode:?}: no failures — the mid-list removal path never ran"
        );
        assert_eq!(
            calendar,
            run_churn(FelBackend::Calendar, mode),
            "{mode:?}: repeated churn run diverged (nondeterminism)"
        );
        assert_eq!(
            calendar,
            run_churn(FelBackend::BinaryHeap, mode),
            "{mode:?}: FEL backends diverged under drain churn"
        );
    }
}
