//! Barrier edge cases of the sharded engine: the merged summary must be
//! bit-identical for every shard count, including when the partition is
//! degenerate — more shards than instances, shards emptied mid-tick by
//! a scale-down, boots and drains landing exactly on a barrier.

use vmprov_cloudsim::config::PriorityConfig;
use vmprov_cloudsim::{
    CounterProbe, MetricsOptions, RunSummary, SimBuilder, SimConfig, SimScratch, TimeSeriesProbe,
    TraceProbe,
};
use vmprov_core::policy::{PoolStatus, ProvisioningPolicy};
use vmprov_core::qos::QosTargets;
use vmprov_core::{LeastOutstanding, RandomDispatch, RoundRobin, StaticPolicy};
use vmprov_des::{FelBackend, RngFactory, SimTime};
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::ServiceModel;

const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 7];

fn cfg() -> SimConfig {
    SimConfig {
        hosts: 50,
        monitor_interval: 10.0,
        ..SimConfig::paper(0.100, 0.250)
    }
}

/// A policy that walks a scripted target sequence, one step per
/// evaluation — the tool for forcing scale transitions onto exact
/// barrier times.
struct TargetSequence {
    targets: Vec<u32>,
    step: usize,
    interval: f64,
    k: u32,
}

impl TargetSequence {
    fn boxed(targets: &[u32], interval: f64, k: u32) -> Box<dyn ProvisioningPolicy> {
        Box::new(TargetSequence {
            targets: targets.to_vec(),
            step: 0,
            interval,
            k,
        })
    }
}

impl ProvisioningPolicy for TargetSequence {
    fn name(&self) -> String {
        "TargetSequence".to_string()
    }

    fn initial_instances(&self) -> u32 {
        self.targets[0]
    }

    fn evaluate(&mut self, _status: &PoolStatus) -> u32 {
        let t = self.targets[self.step.min(self.targets.len() - 1)];
        self.step += 1;
        t
    }

    fn next_evaluation(&self, now: SimTime) -> SimTime {
        now + self.interval
    }

    fn queue_capacity(&self, _tm: f64) -> u32 {
        self.k
    }
}

fn run_static(
    shards: Option<u32>,
    backend: FelBackend,
    config: SimConfig,
    m: u32,
    rate: f64,
    horizon: f64,
    seed: u64,
) -> RunSummary {
    SimBuilder::new(config)
        .workload(PoissonProcess::new(rate, SimTime::from_secs(horizon)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(m, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .fel_backend(backend)
        .shards(shards)
        .run(&RngFactory::new(seed))
}

fn run_scripted(
    shards: Option<u32>,
    backend: FelBackend,
    config: SimConfig,
    targets: &[u32],
    rate: f64,
    horizon: f64,
    seed: u64,
) -> RunSummary {
    SimBuilder::new(config)
        .workload(PoissonProcess::new(rate, SimTime::from_secs(horizon)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(TargetSequence::boxed(targets, 10.0, 3))
        .dispatcher(RoundRobin::new())
        .fel_backend(backend)
        .shards(shards)
        .run(&RngFactory::new(seed))
}

/// The anchor invariant: shard count never changes the merged summary,
/// on either FEL backend, with priority classes and failures active.
#[test]
fn shard_count_is_invariant_across_backends() {
    let config = SimConfig {
        priority: Some(PriorityConfig {
            high_fraction: 0.3,
            reserved_slots: 1,
        }),
        instance_mtbf: Some(400.0),
        ..cfg()
    };
    let baseline = run_static(Some(1), FelBackend::Calendar, config, 8, 60.0, 500.0, 42);
    assert!(baseline.offered_requests > 10_000, "workload must be real");
    assert!(baseline.accepted_requests > 0);
    for backend in [FelBackend::Calendar, FelBackend::BinaryHeap] {
        for n in SHARD_COUNTS {
            let s = run_static(Some(n), backend, config, 8, 60.0, 500.0, 42);
            assert_eq!(baseline, s, "shards={n} on {backend:?} diverged");
        }
    }
}

/// Random dispatch routes by a counter-indexed stream, so it must be
/// shard-count invariant too.
#[test]
fn random_dispatch_is_shard_count_invariant() {
    let run = |n: u32| {
        SimBuilder::new(cfg())
            .workload(PoissonProcess::new(50.0, SimTime::from_secs(400.0)))
            .service(ServiceModel::new(0.100, 0.10))
            .policy(Box::new(StaticPolicy::new(6, QosTargets::web_paper())))
            .dispatcher(RandomDispatch::new())
            .shards(Some(n))
            .run(&RngFactory::new(7))
    };
    let baseline = run(1);
    assert!(baseline.offered_requests > 0);
    for n in [2, 4, 7] {
        assert_eq!(baseline, run(n), "random dispatch diverged at {n} shards");
    }
}

/// More shards than instances: most shards own nothing (and with m = 2,
/// at least five of seven own no VM at all) yet still participate in
/// every barrier.
#[test]
fn shard_count_may_exceed_live_instances() {
    let baseline = run_static(Some(1), FelBackend::Calendar, cfg(), 2, 25.0, 300.0, 11);
    assert!(baseline.offered_requests > 0);
    for n in [2, 7, 16] {
        let s = run_static(Some(n), FelBackend::Calendar, cfg(), 2, 25.0, 300.0, 11);
        assert_eq!(baseline, s, "shards={n} diverged with a 2-VM fleet");
    }
}

/// A scripted collapse from 12 instances to 1 empties most shards
/// mid-run: their draining instances die inside a window and the empty
/// shards keep hitting barriers with nothing to do.
#[test]
fn scale_down_may_empty_a_shard() {
    let targets = [12, 12, 1, 1, 12, 1, 12, 12, 1];
    let baseline = run_scripted(
        Some(1),
        FelBackend::Calendar,
        cfg(),
        &targets,
        80.0,
        400.0,
        13,
    );
    assert!(baseline.offered_requests > 0);
    assert!(
        baseline.max_instances >= 12 && baseline.min_instances <= 1,
        "the script must actually swing the fleet: {baseline:?}"
    );
    for backend in [FelBackend::Calendar, FelBackend::BinaryHeap] {
        for n in SHARD_COUNTS {
            let s = run_scripted(Some(n), backend, cfg(), &targets, 80.0, 400.0, 13);
            assert_eq!(baseline, s, "shards={n} on {backend:?} diverged");
        }
    }
}

/// Boot completions land *exactly* on evaluation barriers (boot delay =
/// evaluation interval), and the oscillating target cancels pending
/// boots and drains instances at those same barriers.
#[test]
fn boot_and_drain_transitions_on_exact_barriers() {
    let config = SimConfig {
        boot_delay: 10.0, // == monitor_interval == evaluation interval
        ..cfg()
    };
    let targets = [6, 2, 9, 2, 9, 2, 6, 6, 2, 9];
    let baseline = run_scripted(
        Some(1),
        FelBackend::Calendar,
        config,
        &targets,
        60.0,
        400.0,
        17,
    );
    assert!(baseline.offered_requests > 0);
    assert!(baseline.vms_created > 6, "boots must happen: {baseline:?}");
    for backend in [FelBackend::Calendar, FelBackend::BinaryHeap] {
        for n in SHARD_COUNTS {
            let s = run_scripted(Some(n), backend, config, &targets, 60.0, 400.0, 17);
            assert_eq!(baseline, s, "shards={n} on {backend:?} diverged");
        }
    }
}

/// Warm scratch reuse on the sharded path is bit-identical to fresh
/// runs, across shard-count and backend switches through one scratch.
#[test]
fn sharded_scratch_reuse_is_bit_identical() {
    let fresh = run_static(Some(4), FelBackend::Calendar, cfg(), 8, 50.0, 400.0, 19);
    let mut scratch = SimScratch::new();
    let mut run_warm = |n: u32, backend: FelBackend| {
        SimBuilder::new(cfg())
            .workload(PoissonProcess::new(50.0, SimTime::from_secs(400.0)))
            .service(ServiceModel::new(0.100, 0.10))
            .policy(Box::new(StaticPolicy::new(8, QosTargets::web_paper())))
            .dispatcher(RoundRobin::new())
            .fel_backend(backend)
            .shards(Some(n))
            .run_scratch(&RngFactory::new(19), &mut scratch)
    };
    assert_eq!(fresh, run_warm(4, FelBackend::Calendar), "cold scratch");
    assert_eq!(fresh, run_warm(4, FelBackend::Calendar), "warm scratch");
    assert_eq!(
        fresh,
        run_warm(2, FelBackend::Calendar),
        "shard-count switch through one scratch"
    );
    assert_eq!(
        fresh,
        run_warm(4, FelBackend::BinaryHeap),
        "backend switch through one scratch"
    );
}

/// Probes observe the same events whatever the shard count: counters
/// must match exactly, and a sharded trace differs from the one-shard
/// trace only in its `shard` tags.
#[test]
fn probes_are_shard_count_invariant() {
    let run = |n: u32| {
        SimBuilder::new(cfg())
            .workload(PoissonProcess::new(40.0, SimTime::from_secs(200.0)))
            .service(ServiceModel::new(0.100, 0.10))
            .policy(TargetSequence::boxed(&[6, 2, 6, 2], 10.0, 3))
            .dispatcher(RoundRobin::new())
            .probe((TraceProbe::new(Vec::new()), CounterProbe::new()))
            .shards(Some(n))
            .run_probed(&RngFactory::new(23))
    };
    let (s1, (t1, c1)) = run(1);
    let (s4, (t4, c4)) = run(4);
    assert_eq!(s1, s4);
    assert_eq!(c1.arrivals, c4.arrivals);
    assert_eq!(c1.admits, c4.admits);
    assert_eq!(c1.completions, c4.completions);
    assert_eq!(c1.vm_boots, c4.vm_boots);
    assert_eq!(c1.vm_destroys, c4.vm_destroys);
    assert_eq!(c1.arrivals, s1.offered_requests);
    assert_eq!(c1.completions, s1.accepted_requests);
    assert_eq!(t1.lines(), t4.lines());
    let strip = |buf: Vec<u8>| -> Vec<String> {
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| {
                let v = vmprov_json::Json::parse(l).expect("valid trace JSON");
                let vmprov_json::Json::Obj(members) = v else {
                    panic!("trace line is not an object: {l}");
                };
                vmprov_json::Json::Obj(members.into_iter().filter(|(k, _)| k != "shard").collect())
                    .to_string_compact()
            })
            .collect()
    };
    assert_eq!(
        strip(t1.into_inner()),
        strip(t4.into_inner()),
        "traces must agree up to shard tags"
    );
}

#[test]
#[should_panic(expected = "least-outstanding")]
fn sharded_rejects_queue_state_dispatchers() {
    SimBuilder::new(cfg())
        .workload(PoissonProcess::new(10.0, SimTime::from_secs(50.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(2, QosTargets::web_paper())))
        .dispatcher(LeastOutstanding)
        .shards(Some(2))
        .run(&RngFactory::new(1));
}

#[test]
#[should_panic(expected = "sampling probes are not supported")]
fn sharded_rejects_sampling_probes() {
    SimBuilder::new(cfg())
        .workload(PoissonProcess::new(10.0, SimTime::from_secs(50.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(2, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .probe(TimeSeriesProbe::new(10.0))
        .shards(Some(2))
        .run_probed(&RngFactory::new(1));
}

#[test]
#[should_panic(expected = "histograms are not supported")]
fn sharded_rejects_histogram_metrics() {
    SimBuilder::new(cfg())
        .workload(PoissonProcess::new(10.0, SimTime::from_secs(50.0)))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(2, QosTargets::web_paper())))
        .dispatcher(RoundRobin::new())
        .metrics(MetricsOptions::with_histogram())
        .shards(Some(2))
        .run(&RngFactory::new(1));
}
