//! The burst seam contract: pulling batches through `next_batch_run`
//! must yield the same batch sequence *and* leave the arrival RNG
//! stream at the same position as one-at-a-time `next_batch` pulls,
//! for every run length — that is what lets the simulator expand whole
//! runs while staying on the scalar draw order.
//!
//! The consumer's side of the contract is mimicked here: after a batch
//! is obtained, its `count` spread offsets are drawn from the same
//! stream whenever `spread > 0` (exactly what the simulator does at
//! expansion time).

use vmprov_des::{RngFactory, SimRng, SimTime};
use vmprov_workloads::scientific::ScientificWorkload;
use vmprov_workloads::synthetic::PoissonProcess;
use vmprov_workloads::{ArrivalBatch, ArrivalProcess, StreamReplay, Trace, WebWorkload};

/// Drives `process` to exhaustion one batch at a time, drawing the
/// consumer-side spread offsets from the same stream. Because the
/// spread draws share the arrival stream with generation draws, any
/// interleaving divergence on a run-pulling consumer would corrupt the
/// *values* of every later batch — so batch-log equality is the full
/// invariant. (Stream position after exhaustion is allowed to differ:
/// discovering the horizon costs the run path one extra probe draw,
/// and nothing reads the arrival stream after exhaustion.)
fn drive_scalar<P: ArrivalProcess>(mut process: P, rng: &mut SimRng) -> Vec<ArrivalBatch> {
    let mut log = Vec::new();
    while let Some(b) = process.next_batch(rng) {
        if b.spread > 0.0 {
            for _ in 0..b.count {
                rng.uniform(0.0, b.spread);
            }
        }
        log.push(b);
    }
    log
}

/// Same, pulling runs of up to `max` batches per call.
fn drive_runs<P: ArrivalProcess>(
    mut process: P,
    rng: &mut SimRng,
    max: usize,
) -> Vec<ArrivalBatch> {
    let mut log = Vec::new();
    let mut buf = Vec::new();
    loop {
        buf.clear();
        let got = process.next_batch_run(rng, max, &mut buf);
        assert_eq!(got, buf.len(), "next_batch_run return disagrees with out");
        if got == 0 {
            break;
        }
        for b in &buf {
            if b.spread > 0.0 {
                for _ in 0..b.count {
                    rng.uniform(0.0, b.spread);
                }
            }
        }
        log.extend_from_slice(&buf);
    }
    log
}

fn assert_seam_equivalence<P: ArrivalProcess>(make: impl Fn() -> P, label: &str) {
    let factory = RngFactory::new(77);
    let scalar = drive_scalar(make(), &mut factory.stream("arrivals"));
    assert!(!scalar.is_empty(), "{label}: empty scalar log");
    for max in [1usize, 7, 64] {
        let runs = drive_runs(make(), &mut factory.stream("arrivals"), max);
        assert_eq!(scalar.len(), runs.len(), "{label}, max={max}: batch count");
        for (i, (a, b)) in scalar.iter().zip(&runs).enumerate() {
            assert_eq!(a, b, "{label}, max={max}: batch {i} diverged");
        }
    }
}

#[test]
fn poisson_runs_match_scalar_pulls() {
    assert_seam_equivalence(
        || PoissonProcess::new(5.0, SimTime::from_secs(2_000.0)),
        "poisson",
    );
}

#[test]
fn web_runs_match_scalar_pulls() {
    assert_seam_equivalence(
        || {
            WebWorkload::new(vmprov_workloads::WebConfig {
                horizon: SimTime::from_hours(4.0),
                ..Default::default()
            })
        },
        "web",
    );
}

#[test]
fn scientific_runs_match_scalar_pulls() {
    assert_seam_equivalence(
        || {
            ScientificWorkload::new(vmprov_workloads::ScientificConfig {
                horizon: SimTime::from_hours(6.0),
                ..Default::default()
            })
        },
        "scientific",
    );
}

#[test]
fn replay_runs_match_scalar_pulls() {
    // A trace mixing spread-0 and spread>0 rows exercises both the bulk
    // copy and the stop-after-spread rule in the replay override.
    let batches: Vec<ArrivalBatch> = (0..500)
        .map(|i| ArrivalBatch {
            time: SimTime::from_secs(i as f64 * 3.0),
            count: 1 + (i % 4),
            spread: if i % 5 == 0 { 2.5 } else { 0.0 },
        })
        .collect();
    let trace = Trace::new(batches).expect("valid trace");
    assert_seam_equivalence(|| StreamReplay::from_trace(trace.clone()), "replay");
}
