//! Recorded arrival traces: capture any [`ArrivalProcess`] into a
//! concrete list of batches and persist it as CSV.
//!
//! Recording enables exact workload sharing between runs that must see
//! identical traffic regardless of how many random draws each policy
//! consumes. Everything *read back* — this crate's own CSV, real
//! production traces, future dataset formats — enters through the
//! [`crate::dataset`] seam instead ([`CsvReader`](crate::dataset::CsvReader)
//! and friends); `Trace` is the in-memory recording side only, and
//! [`Trace::replay`] routes through the same
//! [`StreamReplay`](crate::dataset::StreamReplay) plumbing the on-disk
//! readers use.

use crate::dataset::{DatasetError, StreamReplay};
use crate::traits::{ArrivalBatch, ArrivalProcess};
use std::io::{self, Write};
use vmprov_des::{SimRng, SimTime};

/// A recorded arrival trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    batches: Vec<ArrivalBatch>,
}

impl Trace {
    /// Creates a trace from explicit batches, validating that they are
    /// time-ordered with finite, non-negative spreads. The error's
    /// `line` is the 1-based index of the offending batch — the same
    /// contract as the file readers, so callers ingesting external data
    /// report consistent positions.
    pub fn new(batches: Vec<ArrivalBatch>) -> Result<Self, DatasetError> {
        for (i, w) in batches.windows(2).enumerate() {
            if w[1].time < w[0].time {
                return Err(DatasetError::at(
                    i as u64 + 2,
                    format!(
                        "out-of-order timestamp {} (previous batch at {})",
                        w[1].time.as_secs(),
                        w[0].time.as_secs()
                    ),
                ));
            }
        }
        for (i, b) in batches.iter().enumerate() {
            if !(b.spread >= 0.0 && b.spread.is_finite()) {
                return Err(DatasetError::at(
                    i as u64 + 1,
                    format!("non-finite or negative spread {}", b.spread),
                ));
            }
        }
        Ok(Trace { batches })
    }

    /// Records `process` to exhaustion using `rng`. Infallible: a
    /// well-behaved process emits ordered batches by contract.
    pub fn record(process: &mut dyn ArrivalProcess, rng: &mut SimRng) -> Self {
        let mut batches = Vec::new();
        while let Some(b) = process.next_batch(rng) {
            batches.push(b);
        }
        Trace { batches }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the trace holds no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total requests across all batches.
    pub fn total_requests(&self) -> u64 {
        self.batches.iter().map(|b| b.count).sum()
    }

    /// Time of the last batch (zero for an empty trace).
    pub fn end_time(&self) -> SimTime {
        self.batches.last().map_or(SimTime::ZERO, |b| b.time)
    }

    /// The batches.
    pub fn batches(&self) -> &[ArrivalBatch] {
        &self.batches
    }

    /// Writes the trace as `time,count,spread` CSV — the format
    /// [`CsvReader`](crate::dataset::CsvReader) reads back.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "time,count,spread")?;
        for b in &self.batches {
            writeln!(w, "{},{},{}", b.time.as_secs(), b.count, b.spread)?;
        }
        Ok(())
    }

    /// Turns the trace into a replayable arrival process, streaming
    /// through the [`crate::dataset`] seam (consumes no randomness).
    pub fn replay(self) -> StreamReplay {
        StreamReplay::from_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::PoissonProcess;
    use vmprov_des::RngFactory;

    #[test]
    fn record_and_replay_are_identical() {
        let mut rng = RngFactory::new(5).stream("trace");
        let mut p = PoissonProcess::new(10.0, SimTime::from_secs(100.0));
        let trace = Trace::record(&mut p, &mut rng);
        assert!(trace.len() > 500);
        assert_eq!(trace.total_requests(), trace.len() as u64); // 1/batch
        let mut replay = trace.clone().replay();
        let mut other_rng = RngFactory::new(999).stream("unused");
        for want in trace.batches() {
            let got = replay.next_batch(&mut other_rng).unwrap();
            assert_eq!(&got, want);
        }
        assert!(replay.next_batch(&mut other_rng).is_none());
    }

    #[test]
    fn replay_reports_the_mean_rate_and_horizon() {
        let batches: Vec<ArrivalBatch> = (0..=60)
            .map(|i| ArrivalBatch {
                time: SimTime::from_secs(i as f64),
                count: 2,
                spread: 0.0,
            })
            .collect();
        let replay = Trace::new(batches).unwrap().replay();
        assert_eq!(replay.horizon().as_secs(), 60.0);
        // 122 requests over 60 s.
        let r = replay.model_rate(SimTime::from_secs(30.0));
        assert!((r - 122.0 / 60.0).abs() < 1e-12, "rate {r}");
    }

    #[test]
    fn constructor_rejects_unordered_with_batch_number() {
        let err = Trace::new(vec![
            ArrivalBatch {
                time: SimTime::from_secs(10.0),
                count: 1,
                spread: 0.0,
            },
            ArrivalBatch {
                time: SimTime::from_secs(5.0),
                count: 1,
                spread: 0.0,
            },
        ])
        .unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("out-of-order"), "{err}");
    }

    #[test]
    fn constructor_rejects_bad_spread() {
        let err = Trace::new(vec![ArrivalBatch {
            time: SimTime::from_secs(0.0),
            count: 1,
            spread: f64::NAN,
        }])
        .unwrap_err();
        assert_eq!(err.line, Some(1));
        assert!(err.msg.contains("spread"), "{err}");
    }
}
