//! Arrival traces: record any [`ArrivalProcess`] into a concrete list of
//! batches, persist it as CSV, and replay it later.
//!
//! Replay enables (a) exact workload sharing between runs that must see
//! identical traffic regardless of how many random draws each policy
//! consumes, and (b) plugging in *real* production traces (the paper
//! points at the Wikipedia trace of Urdaneta et al.) once available —
//! any `time,count,spread` CSV replays through the same pipeline.

use crate::traits::{ArrivalBatch, ArrivalProcess};
use std::io::{self, BufRead, Write};
use vmprov_des::{SimRng, SimTime};

/// A recorded arrival trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    batches: Vec<ArrivalBatch>,
}

impl Trace {
    /// Creates a trace from explicit batches (must be time-ordered).
    ///
    /// # Panics
    /// Panics if batches are out of order or have non-finite fields.
    pub fn new(batches: Vec<ArrivalBatch>) -> Self {
        for w in batches.windows(2) {
            assert!(w[0].time <= w[1].time, "trace batches must be time-ordered");
        }
        for b in &batches {
            assert!(b.spread >= 0.0 && b.spread.is_finite());
        }
        Trace { batches }
    }

    /// Records `process` to exhaustion using `rng`.
    pub fn record(process: &mut dyn ArrivalProcess, rng: &mut SimRng) -> Self {
        let mut batches = Vec::new();
        while let Some(b) = process.next_batch(rng) {
            batches.push(b);
        }
        Trace { batches }
    }

    /// Number of batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether the trace holds no batches.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total requests across all batches.
    pub fn total_requests(&self) -> u64 {
        self.batches.iter().map(|b| b.count).sum()
    }

    /// Time of the last batch (zero for an empty trace).
    pub fn end_time(&self) -> SimTime {
        self.batches.last().map_or(SimTime::ZERO, |b| b.time)
    }

    /// The batches.
    pub fn batches(&self) -> &[ArrivalBatch] {
        &self.batches
    }

    /// Writes the trace as `time,count,spread` CSV.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "time,count,spread")?;
        for b in &self.batches {
            writeln!(w, "{},{},{}", b.time.as_secs(), b.count, b.spread)?;
        }
        Ok(())
    }

    /// Parses a `time,count,spread` CSV (header optional).
    pub fn read_csv<R: BufRead>(r: R) -> io::Result<Self> {
        let mut batches = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with("time") || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split(',');
            let parse_err = |what: &str| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: bad {what}", lineno + 1),
                )
            };
            let time: f64 = parts
                .next()
                .ok_or_else(|| parse_err("time"))?
                .trim()
                .parse()
                .map_err(|_| parse_err("time"))?;
            let count: u64 = parts
                .next()
                .ok_or_else(|| parse_err("count"))?
                .trim()
                .parse()
                .map_err(|_| parse_err("count"))?;
            let spread: f64 = match parts.next() {
                Some(s) => s.trim().parse().map_err(|_| parse_err("spread"))?,
                None => 0.0,
            };
            if !time.is_finite() || time < 0.0 || !spread.is_finite() || spread < 0.0 {
                return Err(parse_err("value range"));
            }
            batches.push(ArrivalBatch {
                time: SimTime::from_secs(time),
                count,
                spread,
            });
        }
        batches.sort_by_key(|b| b.time);
        Ok(Trace { batches })
    }

    /// Turns the trace into a replayable arrival process.
    pub fn replay(self) -> TraceReplay {
        TraceReplay {
            horizon: self.end_time(),
            trace: self,
            cursor: 0,
        }
    }
}

/// An [`ArrivalProcess`] that replays a recorded [`Trace`] verbatim
/// (consumes no randomness).
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: Trace,
    cursor: usize,
    horizon: SimTime,
}

impl ArrivalProcess for TraceReplay {
    fn next_batch(&mut self, _rng: &mut SimRng) -> Option<ArrivalBatch> {
        let b = self.trace.batches.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(b)
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        // Empirical rate: requests in the window around t (±30 s).
        let half = 30.0;
        let (lo, hi) = (t.as_secs() - half, t.as_secs() + half);
        let reqs: u64 = self
            .trace
            .batches
            .iter()
            .filter(|b| b.time.as_secs() >= lo && b.time.as_secs() < hi)
            .map(|b| b.count)
            .sum();
        reqs as f64 / (2.0 * half)
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::PoissonProcess;
    use vmprov_des::RngFactory;

    #[test]
    fn record_and_replay_are_identical() {
        let mut rng = RngFactory::new(5).stream("trace");
        let mut p = PoissonProcess::new(10.0, SimTime::from_secs(100.0));
        let trace = Trace::record(&mut p, &mut rng);
        assert!(trace.len() > 500);
        assert_eq!(trace.total_requests(), trace.len() as u64); // 1/batch
        let mut replay = trace.clone().replay();
        let mut other_rng = RngFactory::new(999).stream("unused");
        for want in trace.batches() {
            let got = replay.next_batch(&mut other_rng).unwrap();
            assert_eq!(&got, want);
        }
        assert!(replay.next_batch(&mut other_rng).is_none());
    }

    #[test]
    fn csv_round_trip() {
        let trace = Trace::new(vec![
            ArrivalBatch {
                time: SimTime::from_secs(0.0),
                count: 3,
                spread: 60.0,
            },
            ArrivalBatch {
                time: SimTime::from_secs(12.5),
                count: 1,
                spread: 0.0,
            },
        ]);
        let mut buf = Vec::new();
        trace.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("time,count,spread\n"));
        let back = Trace::read_csv(io::BufReader::new(&buf[..])).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn csv_accepts_headerless_and_two_column() {
        let input = "0.0,5\n10.0,2,30.0\n# comment\n\n";
        let t = Trace::read_csv(io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.batches()[0].count, 5);
        assert_eq!(t.batches()[0].spread, 0.0);
        assert_eq!(t.batches()[1].spread, 30.0);
    }

    #[test]
    fn csv_sorts_out_of_order_rows() {
        let input = "time,count,spread\n20.0,1,0\n5.0,2,0\n";
        let t = Trace::read_csv(io::BufReader::new(input.as_bytes())).unwrap();
        assert_eq!(t.batches()[0].time.as_secs(), 5.0);
    }

    #[test]
    fn csv_rejects_garbage() {
        for bad in ["abc,1,0\n", "1.0,notanumber\n", "-5.0,1,0\n", "1.0,1,-2\n"] {
            assert!(
                Trace::read_csv(io::BufReader::new(bad.as_bytes())).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn replay_model_rate_reflects_density() {
        let batches: Vec<ArrivalBatch> = (0..60)
            .map(|i| ArrivalBatch {
                time: SimTime::from_secs(i as f64),
                count: 2,
                spread: 0.0,
            })
            .collect();
        let replay = Trace::new(batches).replay();
        // 2 req/s over the first minute.
        let r = replay.model_rate(SimTime::from_secs(30.0));
        assert!((r - 2.0).abs() < 0.2, "rate {r}");
        // Quiet afterwards.
        let r = replay.model_rate(SimTime::from_secs(500.0));
        assert_eq!(r, 0.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn constructor_rejects_unordered() {
        Trace::new(vec![
            ArrivalBatch {
                time: SimTime::from_secs(10.0),
                count: 1,
                spread: 0.0,
            },
            ArrivalBatch {
                time: SimTime::from_secs(5.0),
                count: 1,
                spread: 0.0,
            },
        ]);
    }
}
