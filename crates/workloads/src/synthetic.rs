//! Synthetic arrival processes for tests, ablations, and stress cases
//! the production models do not cover: unmodeled shifts (step, flash
//! crowd), smooth trends (ramp), and bursty modulated traffic (MMPP).

use crate::traits::{ArrivalBatch, ArrivalProcess};
use vmprov_des::dist::{Exponential, SamplerBackend, StdExp};
use vmprov_des::{SimRng, SimTime};

/// Homogeneous Poisson arrivals at `rate` requests/second.
#[derive(Debug, Clone)]
pub struct PoissonProcess {
    rate: f64,
    horizon: SimTime,
    cursor: f64,
    exp: StdExp,
}

impl PoissonProcess {
    /// Creates the process. `rate > 0`.
    pub fn new(rate: f64, horizon: SimTime) -> Self {
        Self::with_sampler(rate, horizon, SamplerBackend::default())
    }

    /// Creates the process with an explicit exponential sampler backend.
    pub fn with_sampler(rate: f64, horizon: SimTime, sampler: SamplerBackend) -> Self {
        assert!(rate > 0.0 && rate.is_finite());
        PoissonProcess {
            rate,
            horizon,
            cursor: 0.0,
            exp: StdExp::new(sampler),
        }
    }
}

impl ArrivalProcess for PoissonProcess {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        let gap = Exponential::new(self.rate).scale_std(self.exp.next(rng));
        self.cursor += gap;
        if self.cursor >= self.horizon.as_secs() {
            return None;
        }
        Some(ArrivalBatch {
            time: SimTime::from_secs(self.cursor),
            count: 1,
            spread: 0.0,
        })
    }

    /// Burst override: every batch has `spread = 0`, so the default's
    /// stop-after-spread rule never triggers and a run is simply `max`
    /// consecutive gap draws — generated here in one tight loop (the
    /// exponential is hoisted out) with the exact per-gap draw order of
    /// [`next_batch`](Self::next_batch).
    fn next_batch_run(
        &mut self,
        rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        let dist = Exponential::new(self.rate);
        let horizon = self.horizon.as_secs();
        let mut n = 0;
        while n < max {
            self.cursor += dist.scale_std(self.exp.next(rng));
            if self.cursor >= horizon {
                break;
            }
            out.push(ArrivalBatch {
                time: SimTime::from_secs(self.cursor),
                count: 1,
                spread: 0.0,
            });
            n += 1;
        }
        n
    }

    fn model_rate(&self, _t: SimTime) -> f64 {
        self.rate
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Piecewise-constant rate: a list of `(start_time, rate)` breakpoints.
/// Arrivals are Poisson within each piece. Covers step loads and flash
/// crowds (a tall short piece).
#[derive(Debug, Clone)]
pub struct PiecewiseRateProcess {
    pieces: Vec<(f64, f64)>,
    horizon: SimTime,
    cursor: f64,
    exp: StdExp,
}

impl PiecewiseRateProcess {
    /// Creates the process from `(start, rate)` pieces.
    ///
    /// # Panics
    /// Panics unless pieces start at 0, are strictly ordered, and have
    /// non-negative finite rates.
    pub fn new(pieces: Vec<(f64, f64)>, horizon: SimTime) -> Self {
        Self::with_sampler(pieces, horizon, SamplerBackend::default())
    }

    /// [`Self::new`] with an explicit exponential sampler backend.
    pub fn with_sampler(
        pieces: Vec<(f64, f64)>,
        horizon: SimTime,
        sampler: SamplerBackend,
    ) -> Self {
        assert!(
            !pieces.is_empty() && pieces[0].0 == 0.0,
            "must start at t=0"
        );
        for w in pieces.windows(2) {
            assert!(w[0].0 < w[1].0, "breakpoints must increase");
        }
        assert!(pieces.iter().all(|&(_, r)| r >= 0.0 && r.is_finite()));
        PiecewiseRateProcess {
            pieces,
            horizon,
            cursor: 0.0,
            exp: StdExp::new(sampler),
        }
    }

    /// A step load: `low` until `step_at`, then `high`.
    pub fn step(low: f64, high: f64, step_at: f64, horizon: SimTime) -> Self {
        Self::new(vec![(0.0, low), (step_at, high)], horizon)
    }

    /// A flash crowd: `base` rate with a burst of `peak` during
    /// `[burst_start, burst_start + burst_len)`.
    pub fn flash_crowd(
        base: f64,
        peak: f64,
        burst_start: f64,
        burst_len: f64,
        horizon: SimTime,
    ) -> Self {
        Self::new(
            vec![
                (0.0, base),
                (burst_start, peak),
                (burst_start + burst_len, base),
            ],
            horizon,
        )
    }

    fn piece_at(&self, t: f64) -> usize {
        match self
            .pieces
            .binary_search_by(|&(s, _)| s.partial_cmp(&t).unwrap())
        {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    fn piece_end(&self, i: usize) -> f64 {
        self.pieces
            .get(i + 1)
            .map_or(self.horizon.as_secs(), |&(s, _)| s)
    }
}

impl ArrivalProcess for PiecewiseRateProcess {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        // Thin within the current piece; skip zero-rate pieces.
        loop {
            if self.cursor >= self.horizon.as_secs() {
                return None;
            }
            let i = self.piece_at(self.cursor);
            let rate = self.pieces[i].1;
            let end = self.piece_end(i);
            if rate <= 0.0 {
                self.cursor = end;
                continue;
            }
            let gap = Exponential::new(rate).scale_std(self.exp.next(rng));
            let t = self.cursor + gap;
            if t >= end {
                // No arrival in the remainder of this piece; restart the
                // exponential clock at the boundary (memorylessness).
                self.cursor = end;
                continue;
            }
            self.cursor = t;
            if t >= self.horizon.as_secs() {
                return None;
            }
            return Some(ArrivalBatch {
                time: SimTime::from_secs(t),
                count: 1,
                spread: 0.0,
            });
        }
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        self.pieces[self.piece_at(t.as_secs().min(self.horizon.as_secs()))].1
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Linearly ramping Poisson rate from `start_rate` to `end_rate` over the
/// horizon, generated by thinning against the maximum rate.
#[derive(Debug, Clone)]
pub struct RampProcess {
    start_rate: f64,
    end_rate: f64,
    horizon: SimTime,
    cursor: f64,
    exp: StdExp,
}

impl RampProcess {
    /// Creates the ramp. Rates non-negative, at least one positive.
    pub fn new(start_rate: f64, end_rate: f64, horizon: SimTime) -> Self {
        Self::with_sampler(start_rate, end_rate, horizon, SamplerBackend::default())
    }

    /// [`Self::new`] with an explicit exponential sampler backend.
    pub fn with_sampler(
        start_rate: f64,
        end_rate: f64,
        horizon: SimTime,
        sampler: SamplerBackend,
    ) -> Self {
        assert!(start_rate >= 0.0 && end_rate >= 0.0);
        assert!(start_rate + end_rate > 0.0);
        RampProcess {
            start_rate,
            end_rate,
            horizon,
            cursor: 0.0,
            exp: StdExp::new(sampler),
        }
    }
}

impl ArrivalProcess for RampProcess {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        let max_rate = self.start_rate.max(self.end_rate);
        loop {
            let gap = Exponential::new(max_rate).scale_std(self.exp.next(rng));
            self.cursor += gap;
            if self.cursor >= self.horizon.as_secs() {
                return None;
            }
            // Thinning: accept with probability rate(t)/max_rate.
            let accept = self.model_rate(SimTime::from_secs(self.cursor)) / max_rate;
            if rng.uniform01() < accept {
                return Some(ArrivalBatch {
                    time: SimTime::from_secs(self.cursor),
                    count: 1,
                    spread: 0.0,
                });
            }
        }
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        let frac = (t.as_secs() / self.horizon.as_secs()).clamp(0.0, 1.0);
        self.start_rate + (self.end_rate - self.start_rate) * frac
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Two-state Markov-modulated Poisson process: rate `rate_a` in state A,
/// `rate_b` in state B, with exponential sojourns. A standard model of
/// bursty traffic that violates the renewal assumptions of the analytic
/// backends — used to test robustness.
#[derive(Debug, Clone)]
pub struct MmppProcess {
    rate_a: f64,
    rate_b: f64,
    sojourn_a: f64,
    sojourn_b: f64,
    horizon: SimTime,
    cursor: f64,
    in_a: bool,
    state_end: f64,
    exp: StdExp,
}

impl MmppProcess {
    /// Creates the process; sojourns are the mean times spent in each
    /// state.
    pub fn new(rate_a: f64, rate_b: f64, sojourn_a: f64, sojourn_b: f64, horizon: SimTime) -> Self {
        Self::with_sampler(
            rate_a,
            rate_b,
            sojourn_a,
            sojourn_b,
            horizon,
            SamplerBackend::default(),
        )
    }

    /// [`Self::new`] with an explicit exponential sampler backend.
    pub fn with_sampler(
        rate_a: f64,
        rate_b: f64,
        sojourn_a: f64,
        sojourn_b: f64,
        horizon: SimTime,
        sampler: SamplerBackend,
    ) -> Self {
        assert!(rate_a >= 0.0 && rate_b >= 0.0 && rate_a + rate_b > 0.0);
        assert!(sojourn_a > 0.0 && sojourn_b > 0.0);
        MmppProcess {
            rate_a,
            rate_b,
            sojourn_a,
            sojourn_b,
            horizon,
            cursor: 0.0,
            in_a: true,
            state_end: 0.0,
            exp: StdExp::new(sampler),
        }
    }

    /// Long-run average arrival rate.
    pub fn average_rate(&self) -> f64 {
        let wa = self.sojourn_a / (self.sojourn_a + self.sojourn_b);
        wa * self.rate_a + (1.0 - wa) * self.rate_b
    }
}

impl ArrivalProcess for MmppProcess {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        loop {
            if self.cursor >= self.horizon.as_secs() {
                return None;
            }
            if self.cursor >= self.state_end {
                // Sojourn over: flip state (the very first call keeps the
                // initial state A) and draw the next sojourn length.
                if self.state_end > 0.0 {
                    self.in_a = !self.in_a;
                }
                let mean = if self.in_a {
                    self.sojourn_a
                } else {
                    self.sojourn_b
                };
                self.state_end =
                    self.cursor + Exponential::from_mean(mean).scale_std(self.exp.next(rng));
            }
            let rate = if self.in_a { self.rate_a } else { self.rate_b };
            if rate <= 0.0 {
                self.cursor = self.state_end;
                continue;
            }
            let t = self.cursor + Exponential::new(rate).scale_std(self.exp.next(rng));
            if t >= self.state_end {
                self.cursor = self.state_end;
                continue;
            }
            self.cursor = t;
            if t >= self.horizon.as_secs() {
                return None;
            }
            return Some(ArrivalBatch {
                time: SimTime::from_secs(t),
                count: 1,
                spread: 0.0,
            });
        }
    }

    fn model_rate(&self, _t: SimTime) -> f64 {
        self.average_rate()
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    fn drain(p: &mut dyn ArrivalProcess, rng: &mut SimRng) -> Vec<f64> {
        let mut out = vec![];
        while let Some(b) = p.next_batch(rng) {
            assert_eq!(b.count, 1);
            out.push(b.time.as_secs());
        }
        out
    }

    #[test]
    fn poisson_count_matches_rate() {
        let mut p = PoissonProcess::new(5.0, SimTime::from_secs(10_000.0));
        let mut rng = RngFactory::new(1).stream("poisson");
        let times = drain(&mut p, &mut rng);
        let n = times.len() as f64;
        assert!((n - 50_000.0).abs() < 3.0 * 50_000f64.sqrt(), "n = {n}");
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn step_changes_density() {
        let mut p = PiecewiseRateProcess::step(1.0, 10.0, 500.0, SimTime::from_secs(1000.0));
        let mut rng = RngFactory::new(2).stream("step");
        let times = drain(&mut p, &mut rng);
        let before = times.iter().filter(|&&t| t < 500.0).count() as f64;
        let after = times.iter().filter(|&&t| t >= 500.0).count() as f64;
        assert!((before - 500.0).abs() < 100.0, "before {before}");
        assert!((after - 5000.0).abs() < 300.0, "after {after}");
        assert_eq!(p.model_rate(SimTime::from_secs(10.0)), 1.0);
        assert_eq!(p.model_rate(SimTime::from_secs(700.0)), 10.0);
    }

    #[test]
    fn flash_crowd_burst_visible() {
        let mut p =
            PiecewiseRateProcess::flash_crowd(2.0, 50.0, 100.0, 20.0, SimTime::from_secs(300.0));
        let mut rng = RngFactory::new(3).stream("flash");
        let times = drain(&mut p, &mut rng);
        let burst = times
            .iter()
            .filter(|&&t| (100.0..120.0).contains(&t))
            .count() as f64;
        assert!((burst - 1000.0).abs() < 150.0, "burst {burst}");
    }

    #[test]
    fn zero_rate_piece_produces_nothing() {
        let mut p =
            PiecewiseRateProcess::new(vec![(0.0, 0.0), (100.0, 5.0)], SimTime::from_secs(200.0));
        let mut rng = RngFactory::new(4).stream("zero");
        let times = drain(&mut p, &mut rng);
        assert!(times.iter().all(|&t| t >= 100.0));
        assert!(!times.is_empty());
    }

    #[test]
    fn ramp_density_increases() {
        let mut p = RampProcess::new(0.0, 10.0, SimTime::from_secs(1000.0));
        let mut rng = RngFactory::new(5).stream("ramp");
        let times = drain(&mut p, &mut rng);
        let first_half = times.iter().filter(|&&t| t < 500.0).count();
        let second_half = times.len() - first_half;
        // Rates average 2.5 vs 7.5 → roughly 3× more in the second half.
        let ratio = second_half as f64 / first_half.max(1) as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mmpp_average_rate() {
        let mut p = MmppProcess::new(10.0, 1.0, 50.0, 50.0, SimTime::from_secs(20_000.0));
        assert!((p.average_rate() - 5.5).abs() < 1e-12);
        let mut rng = RngFactory::new(6).stream("mmpp");
        let times = drain(&mut p, &mut rng);
        let rate = times.len() as f64 / 20_000.0;
        assert!((rate - 5.5).abs() < 0.5, "empirical rate {rate}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Index of dispersion of counts over windows should exceed 1.
        let horizon = 50_000.0;
        let mut p = MmppProcess::new(10.0, 0.5, 100.0, 100.0, SimTime::from_secs(horizon));
        let mut rng = RngFactory::new(7).stream("burst");
        let times = drain(&mut p, &mut rng);
        let window = 100.0;
        let n_windows = (horizon / window) as usize;
        let mut counts = vec![0f64; n_windows];
        for t in times {
            counts[(t / window) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / n_windows as f64;
        let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / n_windows as f64;
        assert!(var / mean > 3.0, "dispersion {}", var / mean);
    }

    #[test]
    #[should_panic(expected = "must start at t=0")]
    fn piecewise_must_start_at_zero() {
        PiecewiseRateProcess::new(vec![(1.0, 2.0)], SimTime::from_secs(10.0));
    }

    #[test]
    fn default_backend_is_bit_identical_to_direct_inversion() {
        // `new` must keep producing exactly the pre-sampler-switch
        // stream: gap = -ln(U)/rate drawn straight off the rng.
        let mut p = PoissonProcess::new(5.0, SimTime::from_secs(1_000.0));
        let mut rng = RngFactory::new(11).stream("bitid");
        let mut reference = rng.clone();
        let mut cursor = 0.0;
        while let Some(b) = p.next_batch(&mut rng) {
            cursor += -reference.uniform01_open_left().ln() / 5.0;
            assert_eq!(b.time.as_secs().to_bits(), cursor.to_bits());
        }
    }

    #[test]
    fn ziggurat_backend_preserves_rates() {
        let horizon = SimTime::from_secs(10_000.0);
        let mut p = PoissonProcess::with_sampler(5.0, horizon, SamplerBackend::Ziggurat);
        let mut rng = RngFactory::new(12).stream("zig-poisson");
        let n = drain(&mut p, &mut rng).len() as f64;
        assert!((n - 50_000.0).abs() < 3.0 * 50_000f64.sqrt(), "n = {n}");

        let mut p =
            MmppProcess::with_sampler(10.0, 1.0, 50.0, 50.0, horizon, SamplerBackend::Ziggurat);
        let mut rng = RngFactory::new(13).stream("zig-mmpp");
        let rate = drain(&mut p, &mut rng).len() as f64 / horizon.as_secs();
        assert!((rate - 5.5).abs() < 0.5, "empirical rate {rate}");
    }
}
