//! The **web** workload (§V-B1): a simplified model of the Wikipedia
//! access traces of Urdaneta et al., as used by the paper.
//!
//! * The mean arrival rate follows Eq. 2 of the paper:
//!   `r(t) = Rmin + (Rmax − Rmin)·sin(πt/86400)` with `t` the second of
//!   the day — peak at noon, trough at midnight, 12 h apart.
//! * `Rmax`/`Rmin` per weekday come from Table II
//!   ([`WEEKDAY_RATES`]).
//! * Requests are delivered to the data center in 60-second intervals;
//!   the per-interval count is normally distributed with σ = 5% of the
//!   mean, and the requests are spread uniformly inside the interval.
//! * Each request needs 100 ms on an idle instance, inflated by
//!   U(0, 10%) ([`ServiceModel`]); Ts = 250 ms; rejection target 0;
//!   minimum utilization 80% (those targets live in `vmprov-core`).

use crate::traits::{ArrivalBatch, ArrivalProcess, ServiceModel};
use vmprov_des::dist::{SamplerBackend, StdNormal};
use vmprov_des::{SimRng, SimTime, DAY, WEEK};

/// Table II of the paper: (maximum, minimum) requests per second for
/// each weekday, Sunday first.
pub const WEEKDAY_RATES: [(f64, f64); 7] = [
    (900.0, 400.0),  // Sunday
    (1000.0, 500.0), // Monday
    (1200.0, 500.0), // Tuesday
    (1200.0, 500.0), // Wednesday
    (1200.0, 500.0), // Thursday
    (1200.0, 500.0), // Friday
    (1000.0, 500.0), // Saturday
];

/// Names matching [`WEEKDAY_RATES`] indices.
pub const WEEKDAY_NAMES: [&str; 7] = [
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
];

/// Configuration of the web workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebConfig {
    /// Index into [`WEEKDAY_RATES`] of the simulation's day 0
    /// (paper: simulation starts Monday 12 a.m. → 1).
    pub start_weekday: usize,
    /// Length of one arrival interval in seconds (paper: 60).
    pub interval: f64,
    /// Relative standard deviation of the per-interval count (paper: 0.05).
    pub noise_rel_std: f64,
    /// Generation horizon (paper: one week).
    pub horizon: SimTime,
    /// Backend generating the per-interval noise deviates.
    pub sampler: SamplerBackend,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            start_weekday: 1, // Monday
            interval: 60.0,
            noise_rel_std: 0.05,
            horizon: SimTime::from_secs(WEEK),
            sampler: SamplerBackend::default(),
        }
    }
}

/// The paper's service-time model for web requests: 100 ms × U(1, 1.1).
pub fn web_service_model() -> ServiceModel {
    ServiceModel::new(0.100, 0.10)
}

/// Mean arrival rate (req/s) of the model at second-of-day `t_day` for
/// the weekday with rates `(rmax, rmin)` — Eq. 2 of the paper.
pub fn eq2_rate(rmax: f64, rmin: f64, t_day: f64) -> f64 {
    rmin + (rmax - rmin) * (std::f64::consts::PI * t_day / DAY).sin()
}

/// The web arrival process.
#[derive(Debug, Clone)]
pub struct WebWorkload {
    config: WebConfig,
    next_interval_start: f64,
    normal: StdNormal,
}

impl WebWorkload {
    /// Creates the process with `config`.
    pub fn new(config: WebConfig) -> Self {
        assert!(config.start_weekday < 7, "weekday index out of range");
        assert!(config.interval > 0.0, "interval must be positive");
        assert!(config.noise_rel_std >= 0.0);
        WebWorkload {
            config,
            next_interval_start: 0.0,
            normal: StdNormal::new(config.sampler),
        }
    }

    /// Creates the paper's exact configuration (one week from Monday).
    pub fn paper() -> Self {
        Self::new(WebConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &WebConfig {
        &self.config
    }

    fn rates_at(&self, t: SimTime) -> (f64, f64) {
        let day = (t.day_index() as usize + self.config.start_weekday) % 7;
        WEEKDAY_RATES[day]
    }
}

impl ArrivalProcess for WebWorkload {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        let start = self.next_interval_start;
        if start >= self.config.horizon.as_secs() {
            return None;
        }
        self.next_interval_start = start + self.config.interval;
        let time = SimTime::from_secs(start);
        let mean_rate = self.model_rate(time);
        let noisy = if self.config.noise_rel_std > 0.0 {
            mean_rate + self.config.noise_rel_std * mean_rate * self.normal.next(rng)
        } else {
            mean_rate
        };
        let count = (noisy.max(0.0) * self.config.interval).round() as u64;
        Some(ArrivalBatch {
            time,
            count,
            spread: self.config.interval,
        })
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        let (rmax, rmin) = self.rates_at(t);
        eq2_rate(rmax, rmin, t.second_of_day())
    }

    fn horizon(&self) -> SimTime {
        self.config.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    #[test]
    fn table2_values_match_paper() {
        assert_eq!(WEEKDAY_RATES[0], (900.0, 400.0)); // Sunday
        assert_eq!(WEEKDAY_RATES[1], (1000.0, 500.0)); // Monday
        for d in 2..=5 {
            assert_eq!(WEEKDAY_RATES[d], (1200.0, 500.0), "{}", WEEKDAY_NAMES[d]);
        }
        assert_eq!(WEEKDAY_RATES[6], (1000.0, 500.0)); // Saturday
    }

    #[test]
    fn eq2_peak_at_noon_trough_at_midnight() {
        let (rmax, rmin) = (1200.0, 500.0);
        assert!((eq2_rate(rmax, rmin, 0.0) - rmin).abs() < 1e-9);
        assert!((eq2_rate(rmax, rmin, DAY / 2.0) - rmax).abs() < 1e-9);
        // Monotone increase from midnight to noon.
        let mut prev = 0.0;
        for h in 0..=12 {
            let r = eq2_rate(rmax, rmin, h as f64 * 3600.0);
            assert!(r >= prev);
            prev = r;
        }
        // Symmetric: 9 a.m. equals 3 p.m.
        let morning = eq2_rate(rmax, rmin, 9.0 * 3600.0);
        let afternoon = eq2_rate(rmax, rmin, 15.0 * 3600.0);
        assert!((morning - afternoon).abs() < 1e-9);
    }

    #[test]
    fn model_rate_uses_weekday_table() {
        let w = WebWorkload::paper(); // starts Monday
                                      // Monday noon: 1000 req/s.
        let monday_noon = SimTime::from_secs(DAY / 2.0);
        assert!((w.model_rate(monday_noon) - 1000.0).abs() < 1e-9);
        // Tuesday (day 1) noon: 1200 req/s.
        let tuesday_noon = SimTime::from_secs(DAY + DAY / 2.0);
        assert!((w.model_rate(tuesday_noon) - 1200.0).abs() < 1e-9);
        // Sunday (day 6) midnight: 400 req/s.
        let sunday_midnight = SimTime::from_secs(6.0 * DAY);
        assert!((w.model_rate(sunday_midnight) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn batches_cover_horizon_at_interval_spacing() {
        let mut w = WebWorkload::new(WebConfig {
            horizon: SimTime::from_secs(600.0),
            ..WebConfig::default()
        });
        let mut rng = RngFactory::new(1).stream("web");
        let mut times = vec![];
        while let Some(b) = w.next_batch(&mut rng) {
            assert_eq!(b.spread, 60.0);
            times.push(b.time.as_secs());
        }
        assert_eq!(
            times,
            vec![0.0, 60.0, 120.0, 180.0, 240.0, 300.0, 360.0, 420.0, 480.0, 540.0]
        );
    }

    #[test]
    fn counts_scale_with_rate_and_noise() {
        let mut w = WebWorkload::paper();
        let mut rng = RngFactory::new(7).stream("webcnt");
        // First interval: Monday midnight, rate 500/s → ~30000 per 60 s.
        let b = w.next_batch(&mut rng).unwrap();
        let expect = 500.0 * 60.0;
        assert!(
            (b.count as f64 - expect).abs() < 5.0 * 0.05 * expect,
            "count {} far from {expect}",
            b.count
        );
    }

    #[test]
    fn weekly_total_matches_paper_magnitude() {
        // §V-C1: ≈500.12 million requests per one-week simulation.
        // Integrate the model rate (no noise needed for the mean).
        let w = WebWorkload::paper();
        let mut total = 0.0;
        let step = 60.0;
        let mut t = 0.0;
        while t < WEEK {
            total += w.model_rate(SimTime::from_secs(t)) * step;
            t += step;
        }
        let millions = total / 1e6;
        // Analytic mean of the model is ≈530M; the paper reports 500.12M
        // generated — same order, ~6% apart (likely rounding/clamping
        // details on their side). Check we are in the right regime.
        assert!(
            (millions - 500.12).abs() / 500.12 < 0.10,
            "weekly total {millions}M requests, paper says 500.12M"
        );
    }

    #[test]
    fn zero_noise_is_deterministic() {
        let cfg = WebConfig {
            noise_rel_std: 0.0,
            horizon: SimTime::from_secs(120.0),
            ..WebConfig::default()
        };
        let mut a = WebWorkload::new(cfg);
        let mut b = WebWorkload::new(cfg);
        let mut r1 = RngFactory::new(1).stream("a");
        let mut r2 = RngFactory::new(2).stream("b");
        while let (Some(x), Some(y)) = (a.next_batch(&mut r1), b.next_batch(&mut r2)) {
            assert_eq!(x.count, y.count);
        }
    }

    #[test]
    #[should_panic(expected = "weekday index out of range")]
    fn invalid_weekday_panics() {
        WebWorkload::new(WebConfig {
            start_weekday: 7,
            ..WebConfig::default()
        });
    }
}
