//! # vmprov-workloads — production workload models
//!
//! The two workloads of the paper's evaluation (§V-B), implemented as
//! generative arrival processes over the `vmprov-des` distributions:
//!
//! * [`WebWorkload`] — the simplified Wikipedia-trace model: per-weekday
//!   min/max rates (Table II), sinusoidal diurnal shape (Eq. 2), 60 s
//!   arrival intervals with 5% normal noise, 100 ms requests;
//! * [`ScientificWorkload`] — the Iosup et al. Bag-of-Tasks model:
//!   Weibull interarrivals in peak hours, Weibull job counts per 30-min
//!   window off-peak, Weibull task batch sizes, 300 s tasks.
//!
//! Plus [`synthetic`] generators (Poisson, step, ramp, flash crowd,
//! MMPP) used by tests and the robustness ablations, and the [`dataset`]
//! seam for streaming trace replay ([`DatasetReader`], [`StreamReplay`],
//! the synthetic trace generator).

#![warn(missing_docs)]

pub mod dataset;
pub mod scientific;
pub mod synthetic;
pub mod trace;
pub mod traits;
pub mod web;

pub use dataset::{
    generate_piecewise_csv, generate_poisson_csv, trace_file_opens, CsvReader, DatasetError,
    DatasetReader, GeneratedTrace, MemoryReader, ScanConsumer, ScanStats, SharedTraceScan,
    StreamReplay, TraceSpec, DEFAULT_CHUNK, SCAN_DEPTH,
};
pub use scientific::{scientific_service_model, ScientificConfig, ScientificWorkload};
pub use trace::Trace;
pub use traits::{ArrivalBatch, ArrivalProcess, ServiceModel};
pub use web::{eq2_rate, web_service_model, WebConfig, WebWorkload, WEEKDAY_NAMES, WEEKDAY_RATES};

use vmprov_des::{SimRng, SimTime};

/// The production workload models as a closed enum.
///
/// The scenario decoder picks the model at runtime; a two-variant
/// `match` (instead of `Box<dyn ArrivalProcess>`) keeps the per-batch
/// call devirtualized and inlinable in a monomorphized simulation while
/// still being a single concrete type the decoder can return.
#[derive(Debug, Clone)]
pub enum AnyWorkload {
    /// The web workload (§V-B1).
    Web(WebWorkload),
    /// The scientific Bag-of-Tasks workload (§V-B2).
    Scientific(ScientificWorkload),
    /// Streamed replay of a recorded or on-disk trace ([`dataset`]).
    Replay(StreamReplay),
}

impl From<WebWorkload> for AnyWorkload {
    fn from(w: WebWorkload) -> Self {
        AnyWorkload::Web(w)
    }
}

impl From<ScientificWorkload> for AnyWorkload {
    fn from(w: ScientificWorkload) -> Self {
        AnyWorkload::Scientific(w)
    }
}

impl From<StreamReplay> for AnyWorkload {
    fn from(w: StreamReplay) -> Self {
        AnyWorkload::Replay(w)
    }
}

impl ArrivalProcess for AnyWorkload {
    #[inline]
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        match self {
            AnyWorkload::Web(w) => w.next_batch(rng),
            AnyWorkload::Scientific(w) => w.next_batch(rng),
            AnyWorkload::Replay(w) => w.next_batch(rng),
        }
    }

    #[inline]
    fn next_batch_run(
        &mut self,
        rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        match self {
            AnyWorkload::Web(w) => w.next_batch_run(rng, max, out),
            AnyWorkload::Scientific(w) => w.next_batch_run(rng, max, out),
            AnyWorkload::Replay(w) => w.next_batch_run(rng, max, out),
        }
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        match self {
            AnyWorkload::Web(w) => w.model_rate(t),
            AnyWorkload::Scientific(w) => w.model_rate(t),
            AnyWorkload::Replay(w) => w.model_rate(t),
        }
    }

    fn horizon(&self) -> SimTime {
        match self {
            AnyWorkload::Web(w) => w.horizon(),
            AnyWorkload::Scientific(w) => w.horizon(),
            AnyWorkload::Replay(w) => w.horizon(),
        }
    }
}
