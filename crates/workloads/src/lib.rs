//! # vmprov-workloads — production workload models
//!
//! The two workloads of the paper's evaluation (§V-B), implemented as
//! generative arrival processes over the `vmprov-des` distributions:
//!
//! * [`WebWorkload`] — the simplified Wikipedia-trace model: per-weekday
//!   min/max rates (Table II), sinusoidal diurnal shape (Eq. 2), 60 s
//!   arrival intervals with 5% normal noise, 100 ms requests;
//! * [`ScientificWorkload`] — the Iosup et al. Bag-of-Tasks model:
//!   Weibull interarrivals in peak hours, Weibull job counts per 30-min
//!   window off-peak, Weibull task batch sizes, 300 s tasks.
//!
//! Plus [`synthetic`] generators (Poisson, step, ramp, flash crowd,
//! MMPP) used by tests and the robustness ablations.

#![warn(missing_docs)]

pub mod scientific;
pub mod synthetic;
pub mod trace;
pub mod traits;
pub mod web;

pub use scientific::{scientific_service_model, ScientificConfig, ScientificWorkload};
pub use trace::{Trace, TraceReplay};
pub use traits::{ArrivalBatch, ArrivalProcess, ServiceModel};
pub use web::{eq2_rate, web_service_model, WebConfig, WebWorkload, WEEKDAY_NAMES, WEEKDAY_RATES};
