//! Workload abstractions.
//!
//! A workload is a stream of *arrival batches*: `count` independent
//! requests that become visible at `time` and are spread uniformly over
//! the following `spread` seconds (0 = simultaneous, as for the tasks of
//! one Bag-of-Tasks job). Generators also expose the ground-truth mean
//! rate of their underlying model, which schedule-based workload
//! analyzers use the way the paper's analyzer uses its knowledge of the
//! workload model (§V-B: "a time-based prediction model").

use vmprov_des::{SimRng, SimTime};

/// A group of requests arriving together.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalBatch {
    /// When the batch becomes visible.
    pub time: SimTime,
    /// Number of independent requests in the batch.
    pub count: u64,
    /// Window (seconds) over which the requests are spread uniformly
    /// starting at `time`. 0 means all arrive at `time`.
    pub spread: f64,
}

/// A stochastic arrival process with a known underlying model.
///
/// Deliberately object-safe: the monomorphized simulator is generic
/// over its workload, but `Box<dyn ArrivalProcess + Send>` remains the
/// erased entry point for callers that decide the model at runtime (the
/// forwarding impl below makes the boxed form satisfy the same generic
/// bounds).
pub trait ArrivalProcess {
    /// Draws the next batch, or `None` once the horizon is exhausted.
    /// Batches are produced in non-decreasing time order.
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch>;

    /// Pulls up to `max` batches into `out` in one call — the burst
    /// seam the batched simulator hot path drinks from. Returns the
    /// number of batches appended; 0 means the horizon is exhausted.
    ///
    /// The default forwards to [`next_batch`](Self::next_batch) and
    /// stops early after appending the first batch with `spread > 0`.
    /// That stopping rule is what keeps a run-pulling consumer on the
    /// *same RNG stream* as a one-at-a-time consumer: `spread = 0`
    /// batches draw nothing at expansion time, so their generation
    /// draws sit back to back in the scalar stream exactly as a
    /// contiguous pull consumes them, while a `spread > 0` batch
    /// interposes its per-request spread draws before the next batch
    /// is generated — so the pull must stop there. Implementations
    /// overriding this for speed must preserve both the rule and the
    /// per-batch draw order.
    fn next_batch_run(
        &mut self,
        rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        let mut n = 0;
        while n < max {
            match self.next_batch(rng) {
                Some(b) => {
                    out.push(b);
                    n += 1;
                    if b.spread > 0.0 {
                        break;
                    }
                }
                None => break,
            }
        }
        n
    }

    /// Ground-truth mean arrival rate (requests/second) of the
    /// underlying model at time `t` — what an oracle predictor would
    /// report.
    fn model_rate(&self, t: SimTime) -> f64;

    /// End of the generation horizon.
    fn horizon(&self) -> SimTime;
}

impl<T: ArrivalProcess + ?Sized> ArrivalProcess for Box<T> {
    #[inline]
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        (**self).next_batch(rng)
    }

    #[inline]
    fn next_batch_run(
        &mut self,
        rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        (**self).next_batch_run(rng, max, out)
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        (**self).model_rate(t)
    }

    fn horizon(&self) -> SimTime {
        (**self).horizon()
    }
}

/// Per-request service demand: a base time inflated by a uniform factor,
/// `base × (1 + U(0, inflation))` — the heterogeneity model of §V-B
/// ("we added a uniformly-generated value between 0% and 10% to the
/// processing time for each request").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceModel {
    /// Service time of the request on an idle instance, before inflation.
    pub base: f64,
    /// Upper bound of the relative uniform inflation (paper: 0.10).
    pub inflation: f64,
}

impl ServiceModel {
    /// Creates the model. `base > 0`, `inflation ≥ 0`.
    pub fn new(base: f64, inflation: f64) -> Self {
        assert!(base > 0.0 && base.is_finite(), "base must be positive");
        assert!(
            (0.0..=10.0).contains(&inflation),
            "inflation must be a sane relative factor"
        );
        ServiceModel { base, inflation }
    }

    /// Draws one service time.
    #[inline]
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.base * (1.0 + rng.uniform(0.0, self.inflation))
    }

    /// Mean service time: `base (1 + inflation/2)`.
    pub fn mean(&self) -> f64 {
        self.base * (1.0 + 0.5 * self.inflation)
    }

    /// Squared coefficient of variation of the service time.
    ///
    /// For `base (1 + U(0, f))`: Var = base² f²/12, so
    /// SCV = (f²/12)/(1 + f/2)². At f = 0.1 this is ≈ 0.00076 — the
    /// near-deterministic regime motivating the `GG1K` analytic backend.
    pub fn scv(&self) -> f64 {
        let m = 1.0 + 0.5 * self.inflation;
        (self.inflation * self.inflation / 12.0) / (m * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    #[test]
    fn service_model_moments() {
        let s = ServiceModel::new(0.1, 0.1);
        assert!((s.mean() - 0.105).abs() < 1e-12);
        let mut rng = RngFactory::new(1).stream("svc");
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            assert!((0.1..0.11).contains(&x), "sample {x} out of range");
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.105).abs() < 1e-4);
        let scv = var / (mean * mean);
        assert!((scv - s.scv()).abs() < 1e-4, "scv {scv} vs {}", s.scv());
        assert!(s.scv() < 0.001);
    }

    #[test]
    fn zero_inflation_is_deterministic() {
        let s = ServiceModel::new(300.0, 0.0);
        let mut rng = RngFactory::new(2).stream("svc0");
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 300.0);
        }
        assert_eq!(s.mean(), 300.0);
        assert_eq!(s.scv(), 0.0);
    }

    #[test]
    #[should_panic(expected = "base must be positive")]
    fn rejects_nonpositive_base() {
        ServiceModel::new(0.0, 0.1);
    }
}
