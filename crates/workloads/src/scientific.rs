//! The **scientific** workload (§V-B2): submission of Bag-of-Tasks jobs
//! following the Iosup et al. model for grid BoT applications.
//!
//! * **Peak time** (8 a.m. – 5 p.m.): job interarrival times are
//!   Weibull(shape 4.25, scale 7.86) seconds.
//! * **Off-peak**: the number of jobs per 30-minute window is
//!   Weibull(1.79, 24.16); jobs arrive at equal intervals inside the
//!   window (the paper's assumption).
//! * Every job carries `size` tasks, `size` drawn from the BoT size
//!   class Weibull(1.76, 2.11) (at least one task).
//! * Each task needs 300 s on an idle instance × U(1, 1.1);
//!   Ts = 700 s, rejection target 0, minimum utilization 80%; the
//!   simulated horizon is one day.
//!
//! The distribution *modes* the paper's analyzer uses (interarrival mode
//! 7.379 s, size-class mode 1.309, off-peak mode 15.298 jobs/30 min) are
//! exposed as constants and re-derived in tests.

use crate::traits::{ArrivalBatch, ArrivalProcess, ServiceModel};
use vmprov_des::dist::{Distribution, SamplerBackend, StdExp, Weibull};
use vmprov_des::{SimRng, SimTime, DAY, HOUR};

/// Start of peak time (8 a.m.), seconds into the day.
pub const PEAK_START: f64 = 8.0 * HOUR;
/// End of peak time (5 p.m.), seconds into the day.
pub const PEAK_END: f64 = 17.0 * HOUR;
/// Off-peak window length: 30 minutes.
pub const OFFPEAK_WINDOW: f64 = 1800.0;

/// Mode of the peak interarrival distribution W(4.25, 7.86), seconds —
/// §V-B2 uses 7.379 s to estimate the peak arrival rate.
pub const PEAK_INTERARRIVAL_MODE: f64 = 7.379;
/// Mode of the BoT size-class distribution W(1.76, 2.11) — §V-B2 uses
/// 1.309 tasks per job.
pub const SIZE_CLASS_MODE: f64 = 1.309;
/// Mode of the off-peak jobs-per-window distribution W(1.79, 24.16) —
/// §V-B2 uses 15.298 jobs per 30-minute window.
pub const OFFPEAK_JOBS_MODE: f64 = 15.298;

/// Configuration of the scientific workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScientificConfig {
    /// Generation horizon (paper: one day, starting midnight).
    pub horizon: SimTime,
    /// Backend generating the standard exponentials behind every
    /// Weibull draw (interarrival, jobs per window, size class).
    pub sampler: SamplerBackend,
}

impl Default for ScientificConfig {
    fn default() -> Self {
        ScientificConfig {
            horizon: SimTime::from_secs(DAY),
            sampler: SamplerBackend::default(),
        }
    }
}

/// The paper's service-time model for scientific tasks: 300 s × U(1, 1.1).
pub fn scientific_service_model() -> ServiceModel {
    ServiceModel::new(300.0, 0.10)
}

/// Whether second-of-day `t_day` falls in peak time.
pub fn is_peak(t_day: f64) -> bool {
    (PEAK_START..PEAK_END).contains(&t_day)
}

/// The scientific (BoT) arrival process.
#[derive(Debug, Clone)]
pub struct ScientificWorkload {
    config: ScientificConfig,
    interarrival: Weibull,
    jobs_per_window: Weibull,
    size_class: Weibull,
    /// Next job arrival instant (peak regime), or the cursor from which
    /// the next window is planned (off-peak regime).
    cursor: f64,
    /// Job arrival instants already planned for the current off-peak
    /// window, in reverse order (pop from the back).
    planned: Vec<f64>,
    exp: StdExp,
}

impl ScientificWorkload {
    /// Creates the process with `config`.
    pub fn new(config: ScientificConfig) -> Self {
        ScientificWorkload {
            config,
            interarrival: Weibull::new(4.25, 7.86),
            jobs_per_window: Weibull::new(1.79, 24.16),
            size_class: Weibull::new(1.76, 2.11),
            cursor: 0.0,
            planned: Vec::new(),
            exp: StdExp::new(config.sampler),
        }
    }

    /// Creates the paper's exact configuration (one day from midnight).
    pub fn paper() -> Self {
        Self::new(ScientificConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &ScientificConfig {
        &self.config
    }

    /// Mean tasks per job after integer truncation:
    /// E[max(1, ⌊S⌋)] = 1 + Σ_{n≥2} P(S ≥ n) for the size class S.
    ///
    /// With W(1.76, 2.11) this is ≈ 1.617 tasks per job, which together
    /// with the interarrival mean reproduces the paper's ≈8286 tasks per
    /// simulated day.
    pub fn mean_tasks_per_job(&self) -> f64 {
        let mut e = 1.0;
        for n in 2..200 {
            let sf = self.size_class.survival(n as f64);
            e += sf;
            if sf < 1e-12 {
                break;
            }
        }
        e
    }

    fn draw_size(&mut self, rng: &mut SimRng) -> u64 {
        let std_exp = self.exp.next(rng);
        (self.size_class.from_std_exp(std_exp).floor() as u64).max(1)
    }

    /// Plans all job instants of the off-peak window starting at
    /// `window_start`: `n` jobs at equal intervals.
    fn plan_offpeak_window(&mut self, window_start: f64, rng: &mut SimRng) {
        let std_exp = self.exp.next(rng);
        let n = self.jobs_per_window.from_std_exp(std_exp).round() as u64;
        self.planned.clear();
        if n == 0 {
            return;
        }
        let gap = OFFPEAK_WINDOW / n as f64;
        // Reverse order so pop() yields increasing times.
        for i in (0..n).rev() {
            self.planned.push(window_start + i as f64 * gap);
        }
    }
}

impl ArrivalProcess for ScientificWorkload {
    fn next_batch(&mut self, rng: &mut SimRng) -> Option<ArrivalBatch> {
        let horizon = self.config.horizon.as_secs();
        loop {
            // Deliver any planned off-peak job first.
            if let Some(t) = self.planned.pop() {
                if t >= horizon {
                    return None;
                }
                return Some(ArrivalBatch {
                    time: SimTime::from_secs(t),
                    count: self.draw_size(rng),
                    spread: 0.0,
                });
            }
            if self.cursor >= horizon {
                return None;
            }
            let t_day = SimTime::from_secs(self.cursor).second_of_day();
            if is_peak(t_day) {
                let t = self.cursor + self.interarrival.from_std_exp(self.exp.next(rng));
                self.cursor = t;
                // A draw can overshoot into off-peak; deliver it anyway
                // (jobs in flight at the boundary), unless past horizon.
                if t >= horizon {
                    return None;
                }
                return Some(ArrivalBatch {
                    time: SimTime::from_secs(t),
                    count: self.draw_size(rng),
                    spread: 0.0,
                });
            }
            // Off-peak: plan one 30-minute window, then loop to deliver.
            let window_start = self.cursor;
            let day_start = self.cursor - t_day;
            // Truncate the window at the peak boundary if it straddles it.
            let window_end = (window_start + OFFPEAK_WINDOW).min(if t_day < PEAK_START {
                day_start + PEAK_START
            } else {
                day_start + DAY
            });
            self.plan_offpeak_window(window_start, rng);
            self.planned.retain(|&t| t < window_end);
            self.cursor = window_end;
        }
    }

    fn model_rate(&self, t: SimTime) -> f64 {
        let tasks_per_job = self.mean_tasks_per_job();
        if is_peak(t.second_of_day()) {
            tasks_per_job / self.interarrival.mean().unwrap()
        } else {
            tasks_per_job * self.jobs_per_window.mean().unwrap() / OFFPEAK_WINDOW
        }
    }

    fn horizon(&self) -> SimTime {
        self.config.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    #[test]
    fn paper_modes_are_consistent_with_distributions() {
        let w = ScientificWorkload::paper();
        assert!((w.interarrival.mode() - PEAK_INTERARRIVAL_MODE).abs() < 5e-3);
        assert!((w.size_class.mode() - SIZE_CLASS_MODE).abs() < 5e-3);
        // W(1.79, 24.16) mode: 24.16·((0.79)/1.79)^(1/1.79) ≈ 15.30.
        assert!((w.jobs_per_window.mode() - OFFPEAK_JOBS_MODE).abs() < 0.01);
    }

    #[test]
    fn peak_window_boundaries() {
        assert!(!is_peak(PEAK_START - 1.0));
        assert!(is_peak(PEAK_START));
        assert!(is_peak(PEAK_END - 1.0));
        assert!(!is_peak(PEAK_END));
    }

    #[test]
    fn batches_are_time_ordered_and_sized() {
        let mut w = ScientificWorkload::paper();
        let mut rng = RngFactory::new(3).stream("sci");
        let mut prev = -1.0;
        let mut total_tasks = 0u64;
        let mut jobs = 0u64;
        while let Some(b) = w.next_batch(&mut rng) {
            assert!(b.time.as_secs() >= prev, "out of order");
            assert!(b.count >= 1);
            assert_eq!(b.spread, 0.0);
            prev = b.time.as_secs();
            total_tasks += b.count;
            jobs += 1;
        }
        assert!(jobs > 0);
        // §V-C2: ≈8286 requests (tasks) per one-day simulation.
        assert!(
            (total_tasks as f64 - 8286.0).abs() / 8286.0 < 0.25,
            "daily tasks {total_tasks}, paper says ≈8286"
        );
    }

    #[test]
    fn daily_totals_match_paper_average() {
        // Average across replications should be close to 8286.
        let mut sum = 0.0;
        let reps = 20;
        for rep in 0..reps {
            let mut w = ScientificWorkload::paper();
            let mut rng = RngFactory::new(11).stream_indexed("sci", rep);
            let mut total = 0u64;
            while let Some(b) = w.next_batch(&mut rng) {
                total += b.count;
            }
            sum += total as f64;
        }
        let avg = sum / reps as f64;
        assert!(
            (avg - 8286.0).abs() / 8286.0 < 0.12,
            "avg daily tasks {avg}, paper says ≈8286"
        );
    }

    #[test]
    fn peak_is_denser_than_offpeak() {
        let mut w = ScientificWorkload::paper();
        let mut rng = RngFactory::new(5).stream("dens");
        let (mut peak_tasks, mut off_tasks) = (0u64, 0u64);
        while let Some(b) = w.next_batch(&mut rng) {
            if is_peak(b.time.second_of_day()) {
                peak_tasks += b.count;
            } else {
                off_tasks += b.count;
            }
        }
        // Peak: 9 h at ~0.26 task/s ≈ 8500·; off-peak: 15 h at ~0.022.
        let peak_rate = peak_tasks as f64 / (9.0 * HOUR);
        let off_rate = off_tasks as f64 / (15.0 * HOUR);
        assert!(
            peak_rate > 5.0 * off_rate,
            "peak {peak_rate} off {off_rate}"
        );
    }

    #[test]
    fn model_rate_levels() {
        let w = ScientificWorkload::paper();
        let peak = w.model_rate(SimTime::from_secs(10.0 * HOUR));
        let off = w.model_rate(SimTime::from_secs(2.0 * HOUR));
        // Peak ≈ 1.617 / 7.157 ≈ 0.226 tasks/s.
        assert!((peak - 0.226).abs() < 0.01, "peak rate {peak}");
        // Off-peak ≈ 1.617 × 21.48 / 1800 ≈ 0.0193 tasks/s.
        assert!((off - 0.0193).abs() < 0.002, "off-peak rate {off}");
    }

    #[test]
    fn respects_horizon() {
        let mut w = ScientificWorkload::new(ScientificConfig {
            horizon: SimTime::from_secs(3600.0),
            ..ScientificConfig::default()
        });
        let mut rng = RngFactory::new(9).stream("hz");
        while let Some(b) = w.next_batch(&mut rng) {
            assert!(b.time.as_secs() < 3600.0);
        }
    }
}
