//! Streaming trace ingestion: the **`DatasetReader` seam**.
//!
//! Every recorded or external trace enters the simulator through one
//! trait, [`DatasetReader`]: a chunked pull interface that yields
//! time-ordered [`ArrivalBatch`] runs without ever materializing the
//! full trace. [`CsvReader`] implements it for `time,count,spread` CSV
//! files (the only on-disk format today); [`MemoryReader`] adapts an
//! in-memory [`Trace`] so recorded traces replay through the same seam;
//! future dataset formats (Wikipedia request logs, cluster traces) slot
//! in as further implementations without touching the simulator.
//!
//! [`StreamReplay`] turns any reader into an [`ArrivalProcess`]: it
//! buffers `chunk` batches at a time, so peak ingestion memory is
//! `chunk × size_of::<ArrivalBatch>()` regardless of trace length, and
//! a 10M-request file replays in a few megabytes. Arrivals are
//! byte-identical for every chunk size (pinned by a property test): the
//! buffer is pure plumbing, invisible to the simulation.
//!
//! [`SharedTraceScan`] is the **fan-out layer** on top of the seam:
//! one decode pass feeding N concurrent [`StreamReplay`] consumers
//! through ref-counted chunk handles with a bounded window
//! ([`SCAN_DEPTH`]), so an analyzer × replication grid over one trace
//! parses it exactly once (build one via
//! [`TraceSpec::replay_shared`]; the [`trace_file_opens`] counter is
//! the probe that asserts the exactly-once property end to end).
//!
//! External files are validated **up front** by [`TraceSpec::scan`],
//! which streams the file once to check it parses end to end and to
//! compute the content hash (the run-cache key component), request
//! totals, and the mean arrival rate. Scan-time errors are line-numbered
//! [`DatasetError`]s, never panics. A reader error *during* the
//! simulation — after a successful scan — means the file changed
//! underneath the run, and `StreamReplay` treats that as fatal.

use crate::trace::Trace;
use crate::traits::{ArrivalBatch, ArrivalProcess};
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use vmprov_des::{SimRng, SimTime, StableHasher};

/// Process-wide count of trace files opened for parsing — the probe the
/// shared-scan grid uses to *assert* it decoded the trace exactly once
/// (one [`CsvReader::open`] per scan wave, however many grid cells
/// consume it). Monotonic; callers measure deltas around a phase.
static TRACE_FILE_OPENS: AtomicU64 = AtomicU64::new(0);

/// Reads the [`CsvReader::open`] counter (see [`TRACE_FILE_OPENS`]).
pub fn trace_file_opens() -> u64 {
    TRACE_FILE_OPENS.load(Ordering::SeqCst)
}

/// A trace-ingestion failure, with the 1-based source line when the
/// failure is attributable to one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    /// 1-based line number of the offending row (`None` for I/O-level
    /// failures that have no line, e.g. the file not existing).
    pub line: Option<u64>,
    /// What went wrong.
    pub msg: String,
}

impl DatasetError {
    /// A line-attributed parse error.
    pub fn at(line: u64, msg: impl Into<String>) -> Self {
        DatasetError {
            line: Some(line),
            msg: msg.into(),
        }
    }

    /// A file-level error with no line.
    pub fn io(msg: impl Into<String>) -> Self {
        DatasetError {
            line: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A chunked source of time-ordered arrival batches.
///
/// The one seam through which every trace format reaches the simulator.
/// Implementations stream: a call fills `out` with at most `max`
/// batches and must not buffer the whole dataset internally.
pub trait DatasetReader: Send {
    /// Appends up to `max` batches to `out`, returning how many were
    /// appended; `0` means the dataset is exhausted. Batches must be
    /// non-decreasing in time, both within one chunk and across chunks.
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError>;
}

/// Streaming `time,count,spread` CSV reader (header and comment lines
/// skipped; the spread column optional, defaulting to 0).
///
/// Unlike the retired `Trace::read_csv`, which slurped the file and
/// sorted it, this reader holds one line at a time — so out-of-order
/// timestamps are a *parse error* (streaming cannot sort), as are
/// truncated rows, non-finite or negative values, all reported with
/// their line number.
pub struct CsvReader<R> {
    input: R,
    line: u64,
    last_time: f64,
    buf: String,
}

impl CsvReader<BufReader<File>> {
    /// Opens a CSV trace file.
    pub fn open(path: &Path) -> Result<Self, DatasetError> {
        let file = File::open(path)
            .map_err(|e| DatasetError::io(format!("cannot open {}: {e}", path.display())))?;
        TRACE_FILE_OPENS.fetch_add(1, Ordering::SeqCst);
        Ok(CsvReader::new(BufReader::new(file)))
    }
}

impl<R: BufRead> CsvReader<R> {
    /// Wraps any buffered reader producing CSV text.
    pub fn new(input: R) -> Self {
        CsvReader {
            input,
            line: 0,
            last_time: 0.0,
            buf: String::new(),
        }
    }

    /// Parses the current `self.buf` into a batch, or `None` for
    /// skippable lines (blank, header, comment).
    fn parse_line(&mut self) -> Result<Option<ArrivalBatch>, DatasetError> {
        let line = self.buf.trim();
        if line.is_empty() || line.starts_with("time") || line.starts_with('#') {
            return Ok(None);
        }
        let n = self.line;
        let mut parts = line.split(',');
        let time_field = parts.next().unwrap_or(""); // split yields ≥1 part
        let time: f64 = time_field
            .trim()
            .parse()
            .map_err(|_| DatasetError::at(n, format!("bad time {time_field:?}")))?;
        let count_field = parts
            .next()
            .ok_or_else(|| DatasetError::at(n, "truncated row: missing count column"))?;
        let count: u64 = count_field
            .trim()
            .parse()
            .map_err(|_| DatasetError::at(n, format!("bad count {count_field:?}")))?;
        let spread: f64 = match parts.next() {
            Some(s) => s
                .trim()
                .parse()
                .map_err(|_| DatasetError::at(n, format!("bad spread {s:?}")))?,
            None => 0.0,
        };
        if !time.is_finite() || time < 0.0 {
            return Err(DatasetError::at(n, format!("time {time} out of range")));
        }
        if !spread.is_finite() || spread < 0.0 {
            return Err(DatasetError::at(
                n,
                format!("non-finite or negative spread {spread}"),
            ));
        }
        if time < self.last_time {
            return Err(DatasetError::at(
                n,
                format!(
                    "out-of-order timestamp {time} (previous row at {})",
                    self.last_time
                ),
            ));
        }
        self.last_time = time;
        Ok(Some(ArrivalBatch {
            time: SimTime::from_secs(time),
            count,
            spread,
        }))
    }
}

impl<R: BufRead + Send> DatasetReader for CsvReader<R> {
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError> {
        let mut appended = 0;
        while appended < max {
            self.buf.clear();
            let n = self
                .input
                .read_line(&mut self.buf)
                .map_err(|e| DatasetError::at(self.line + 1, format!("read failed: {e}")))?;
            if n == 0 {
                break; // EOF
            }
            self.line += 1;
            if let Some(batch) = self.parse_line()? {
                out.push(batch);
                appended += 1;
            }
        }
        Ok(appended)
    }
}

/// Adapts a recorded in-memory [`Trace`] to the reader seam, so
/// recorded and on-disk traces replay through identical plumbing. The
/// `Arc` keeps cloning a replay cheap: the batches are shared, only the
/// cursor is per-reader.
pub struct MemoryReader {
    trace: Arc<Trace>,
    pos: usize,
}

impl MemoryReader {
    /// Creates a reader over a shared trace.
    pub fn new(trace: Arc<Trace>) -> Self {
        MemoryReader { trace, pos: 0 }
    }
}

impl DatasetReader for MemoryReader {
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError> {
        let rest = &self.trace.batches()[self.pos..];
        let take = rest.len().min(max);
        out.extend_from_slice(&rest[..take]);
        self.pos += take;
        Ok(take)
    }
}

/// Default batches held in memory at once by [`StreamReplay`] — 8192
/// batches ≈ 192 KiB, the whole ingestion footprint of a replay.
pub const DEFAULT_CHUNK: usize = 8192;

/// Chunks the shared scan buffers ahead of the slowest consumer: the
/// whole fan-out holds at most `SCAN_DEPTH + 1` chunks alive (the
/// window plus one evicted chunk a straggler may still be iterating),
/// independent of the consumer count.
pub const SCAN_DEPTH: usize = 4;

/// Counters of one [`SharedTraceScan`], for the exactly-once probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks decoded off the underlying reader (each exactly once).
    pub chunks_decoded: u64,
    /// Batches decoded off the underlying reader (each exactly once).
    pub batches_decoded: u64,
    /// High-water mark of the chunk window (≤ [`SCAN_DEPTH`] always —
    /// the backpressure invariant).
    pub max_window: usize,
    /// Consumers registered at fan-out time.
    pub consumers: usize,
}

/// State shared between one scan's consumers, under one mutex.
struct ScanState {
    /// Decoded chunks awaiting slow consumers; `window[0]` has sequence
    /// number `base`.
    window: VecDeque<Arc<Vec<ArrivalBatch>>>,
    /// Sequence number of the oldest buffered chunk.
    base: u64,
    /// Per-consumer next-chunk sequence number; `u64::MAX` marks a
    /// finished or dropped consumer (it no longer holds back eviction).
    cursors: Vec<u64>,
    /// The underlying reader, `None` while a consumer holds it for an
    /// out-of-lock read or after EOF/failure retired it.
    reader: Option<Box<dyn DatasetReader>>,
    /// A consumer is currently decoding the next chunk outside the lock.
    reading: bool,
    /// The reader returned 0: no more chunks will ever appear.
    eof: bool,
    /// The reader failed; every consumer sees this error.
    failed: Option<DatasetError>,
    chunks_decoded: u64,
    batches_decoded: u64,
    max_window: usize,
}

impl ScanState {
    /// Drops every window chunk all live consumers have moved past.
    /// Returns whether anything was evicted (= space freed for the
    /// producer side).
    fn evict(&mut self) -> bool {
        let min_live = self.cursors.iter().copied().min().unwrap_or(u64::MAX);
        let mut evicted = false;
        while !self.window.is_empty() && self.base < min_live {
            self.window.pop_front();
            self.base += 1;
            evicted = true;
        }
        evicted
    }
}

struct ScanShared {
    chunk: usize,
    state: Mutex<ScanState>,
    /// Notified on every state transition: chunk published, chunk
    /// evicted, reader finished/failed, consumer dropped. Consumers
    /// re-check their own condition on wake.
    cv: Condvar,
}

/// One reader, one decode pass, N consumers: the **shared-scan
/// broadcaster** behind replay grids.
///
/// The scan has no thread of its own. Whichever consumer first needs a
/// chunk that is not buffered yet takes the reader out of the shared
/// state, decodes one chunk *outside* the lock, publishes it, and puts
/// the reader back — so I/O and parsing happen exactly once per chunk,
/// cooperatively, on whichever pool worker got there first. Chunks fan
/// out as `Arc` handles (no per-consumer copy); a chunk is evicted as
/// soon as every live consumer has taken it. The window is bounded at
/// [`SCAN_DEPTH`] chunks: when it is full, fast consumers block until
/// the slowest advances — backpressure instead of unbounded buffering,
/// keeping memory `O(chunk × SCAN_DEPTH)` rather than
/// `O(chunk × consumers)`.
///
/// Dropping a [`ScanConsumer`] (including mid-stream, e.g. a panicking
/// grid cell) marks it finished, so stragglers can never wedge the
/// group.
pub struct SharedTraceScan {
    shared: Arc<ScanShared>,
}

impl SharedTraceScan {
    /// Fans `reader` out to `consumers` concurrent consumers decoding
    /// `chunk` batches at a time. All consumers register up front; the
    /// returned handle reports [`ScanStats`] while and after they run.
    pub fn fan_out(
        reader: Box<dyn DatasetReader>,
        consumers: usize,
        chunk: usize,
    ) -> (SharedTraceScan, Vec<ScanConsumer>) {
        assert!(consumers >= 1, "a scan needs at least one consumer");
        assert!(chunk >= 1, "chunk must hold at least one batch");
        let shared = Arc::new(ScanShared {
            chunk,
            state: Mutex::new(ScanState {
                window: VecDeque::new(),
                base: 0,
                cursors: vec![0; consumers],
                reader: Some(reader),
                reading: false,
                eof: false,
                failed: None,
                chunks_decoded: 0,
                batches_decoded: 0,
                max_window: 0,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..consumers)
            .map(|id| ScanConsumer {
                shared: Arc::clone(&shared),
                id,
            })
            .collect();
        (SharedTraceScan { shared }, handles)
    }

    /// Decode counters so far (final once every consumer finished).
    pub fn stats(&self) -> ScanStats {
        let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        ScanStats {
            chunks_decoded: st.chunks_decoded,
            batches_decoded: st.batches_decoded,
            max_window: st.max_window,
            consumers: st.cursors.len(),
        }
    }
}

impl fmt::Debug for SharedTraceScan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("SharedTraceScan")
            .field("consumers", &s.consumers)
            .field("chunks_decoded", &s.chunks_decoded)
            .finish()
    }
}

/// One consumer's cursor into a [`SharedTraceScan`]. Yields every chunk
/// of the underlying reader, in order, as ref-counted handles.
pub struct ScanConsumer {
    shared: Arc<ScanShared>,
    id: usize,
}

impl ScanConsumer {
    /// Blocks until this consumer's next chunk is available and returns
    /// it (`Ok(None)` at end of stream). Decodes the chunk itself when
    /// it gets there first and the window has room; otherwise waits for
    /// the producer-of-the-moment or — when the window is full — for
    /// the slowest consumer to free space.
    pub fn next_chunk(&mut self) -> Result<Option<Arc<Vec<ArrivalBatch>>>, DatasetError> {
        let sh = &self.shared;
        let mut st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            let seq = st.cursors[self.id];
            debug_assert!(seq >= st.base, "cursor behind the window");
            if seq < st.base + st.window.len() as u64 {
                let chunk = Arc::clone(&st.window[(seq - st.base) as usize]);
                st.cursors[self.id] = seq + 1;
                if st.evict() {
                    sh.cv.notify_all();
                }
                return Ok(Some(chunk));
            }
            if let Some(e) = &st.failed {
                return Err(e.clone());
            }
            if st.eof {
                return Ok(None);
            }
            // Nothing buffered for us and the stream is live: decode the
            // next chunk ourselves if the reader is free and the window
            // has room, else wait for whoever has it / for space.
            if !st.reading && st.window.len() < SCAN_DEPTH {
                if let Some(mut reader) = st.reader.take() {
                    st.reading = true;
                    drop(st);
                    let mut buf = Vec::with_capacity(sh.chunk);
                    let res = reader.read_chunk(&mut buf, sh.chunk);
                    st = sh.state.lock().unwrap_or_else(|e| e.into_inner());
                    st.reading = false;
                    match res {
                        Ok(0) => st.eof = true, // reader retired (file closes)
                        Ok(n) => {
                            st.chunks_decoded += 1;
                            st.batches_decoded += n as u64;
                            st.window.push_back(Arc::new(buf));
                            st.max_window = st.max_window.max(st.window.len());
                            st.reader = Some(reader);
                        }
                        Err(e) => st.failed = Some(e),
                    }
                    sh.cv.notify_all();
                    continue;
                }
            }
            st = sh.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl Drop for ScanConsumer {
    /// Deregisters the consumer: its cursor stops holding back eviction,
    /// so a dropped (or panicked) consumer can never backpressure the
    /// rest of the group forever.
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.cursors[self.id] = u64::MAX;
        st.evict();
        self.shared.cv.notify_all();
    }
}

impl fmt::Debug for ScanConsumer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScanConsumer")
            .field("id", &self.id)
            .finish()
    }
}

/// Everything a run needs to know about an on-disk trace, computed by
/// one up-front streaming [`scan`](TraceSpec::scan): the content hash
/// (what the run cache keys on — two copies of one trace share cache
/// entries, and an edited trace never aliases the old one), request and
/// batch totals, the end time (= replay horizon), and the whole-trace
/// mean arrival rate (the oracle λ for a stationary trace).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Where the trace lives. Not part of the cache identity.
    pub path: PathBuf,
    /// Stable 64-bit hash of the raw file bytes.
    pub content_hash: u64,
    /// Total requests (sum of the count column).
    pub total_requests: u64,
    /// Number of batch rows.
    pub batches: u64,
    /// Timestamp of the last batch.
    pub end_time: SimTime,
    /// `total_requests / end_time` (0 for an empty or instant trace).
    pub mean_rate: f64,
    /// Batches buffered per [`read_chunk`](DatasetReader::read_chunk)
    /// call during replay. Pure execution mechanics: results are
    /// bit-identical for every value (property-tested), so it is *not*
    /// part of the cache identity.
    pub chunk: usize,
}

impl TraceSpec {
    /// Streams the file at `path` once, validating every row and
    /// computing the spec. This is where all external-file errors
    /// surface, as line-numbered [`DatasetError`]s.
    pub fn scan(path: &Path, chunk: usize) -> Result<TraceSpec, DatasetError> {
        assert!(chunk >= 1, "chunk must hold at least one batch");
        // Pass 1: hash the raw bytes (format-agnostic identity).
        let mut file = File::open(path)
            .map_err(|e| DatasetError::io(format!("cannot open {}: {e}", path.display())))?;
        let mut hasher = StableHasher::new();
        let mut block = [0u8; 64 * 1024];
        loop {
            let n = file
                .read(&mut block)
                .map_err(|e| DatasetError::io(format!("read {}: {e}", path.display())))?;
            if n == 0 {
                break;
            }
            hasher.write(&block[..n]);
        }
        // Pass 2: parse every row through the same reader the replay
        // will use, accumulating totals chunk by chunk.
        let mut reader = CsvReader::open(path)?;
        let mut buf = Vec::with_capacity(chunk);
        let (mut total, mut batches) = (0u64, 0u64);
        let mut end = SimTime::ZERO;
        loop {
            buf.clear();
            if reader.read_chunk(&mut buf, chunk)? == 0 {
                break;
            }
            for b in &buf {
                total += b.count;
                end = b.time;
            }
            batches += buf.len() as u64;
        }
        let mean_rate = if end > SimTime::ZERO {
            total as f64 / end.as_secs()
        } else {
            0.0
        };
        Ok(TraceSpec {
            path: path.to_path_buf(),
            content_hash: hasher.finish(),
            total_requests: total,
            batches,
            end_time: end,
            mean_rate,
            chunk,
        })
    }

    /// Builds the streaming replay process for this trace.
    pub fn replay(&self) -> StreamReplay {
        StreamReplay {
            source: ReplaySource::File(self.path.clone()),
            chunk: self.chunk,
            mean_rate: self.mean_rate,
            horizon: self.end_time,
            reader: None,
            buf: ChunkBuf::empty(),
            pos: 0,
        }
    }

    /// Builds `consumers` replay processes that share **one** scan of
    /// this trace: the file is opened and decoded once, and the decoded
    /// chunks fan out through a [`SharedTraceScan`]. Each returned
    /// replay yields the byte-identical arrival stream of
    /// [`replay`](Self::replay) — only the I/O and parse work is
    /// amortized — but the consumers must run concurrently: a consumer
    /// more than [`SCAN_DEPTH`] chunks ahead blocks until the slowest
    /// catches up.
    pub fn replay_shared(
        &self,
        consumers: usize,
    ) -> Result<(SharedTraceScan, Vec<StreamReplay>), DatasetError> {
        let reader = Box::new(CsvReader::open(&self.path)?);
        let (scan, handles) = SharedTraceScan::fan_out(reader, consumers, self.chunk);
        let replays = handles
            .into_iter()
            .map(|consumer| StreamReplay {
                source: ReplaySource::Shared(consumer),
                chunk: self.chunk,
                mean_rate: self.mean_rate,
                horizon: self.end_time,
                reader: None,
                buf: ChunkBuf::empty(),
                pos: 0,
            })
            .collect();
        Ok((scan, replays))
    }
}

/// Where a [`StreamReplay`] gets its reader from. The file and memory
/// sources are re-openable so the replay can be `Clone` (each clone
/// starts a fresh pass) even though a live reader is not; a shared-scan
/// consumer is single-pass by construction, so cloning one panics.
enum ReplaySource {
    File(PathBuf),
    Memory(Arc<Trace>),
    Shared(ScanConsumer),
}

impl Clone for ReplaySource {
    fn clone(&self) -> Self {
        match self {
            ReplaySource::File(p) => ReplaySource::File(p.clone()),
            ReplaySource::Memory(t) => ReplaySource::Memory(Arc::clone(t)),
            ReplaySource::Shared(_) => panic!(
                "a shared-scan replay cannot be cloned: the scan is single-pass \
                 (build one consumer per run via TraceSpec::replay_shared)"
            ),
        }
    }
}

/// The replay's current chunk: owned when this replay read it itself,
/// ref-counted when it came off a [`SharedTraceScan`] (no per-consumer
/// copy — the handle *is* the bounded buffering).
enum ChunkBuf {
    Owned(Vec<ArrivalBatch>),
    Shared(Arc<Vec<ArrivalBatch>>),
}

impl ChunkBuf {
    fn empty() -> Self {
        ChunkBuf::Owned(Vec::new())
    }

    #[inline]
    fn as_slice(&self) -> &[ArrivalBatch] {
        match self {
            ChunkBuf::Owned(v) => v,
            ChunkBuf::Shared(a) => a,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.as_slice().len()
    }
}

/// An [`ArrivalProcess`] that streams batches off a [`DatasetReader`]
/// `chunk` at a time. Consumes no randomness; peak memory is one chunk
/// of batches regardless of trace length.
///
/// Cloning resets the stream: the clone replays from the start with its
/// own reader (the source — a path or a shared in-memory trace — is
/// what's cloned, never reader state). That keeps `AnyWorkload: Clone`
/// intact without pretending a half-consumed file handle can fork.
pub struct StreamReplay {
    source: ReplaySource,
    chunk: usize,
    mean_rate: f64,
    horizon: SimTime,
    reader: Option<Box<dyn DatasetReader>>,
    buf: ChunkBuf,
    pos: usize,
}

impl StreamReplay {
    /// Replays a recorded in-memory trace (see also [`Trace::replay`]).
    pub fn from_trace(trace: Trace) -> StreamReplay {
        let horizon = trace.end_time();
        let mean_rate = if horizon > SimTime::ZERO {
            trace.total_requests() as f64 / horizon.as_secs()
        } else {
            0.0
        };
        StreamReplay {
            source: ReplaySource::Memory(Arc::new(trace)),
            chunk: DEFAULT_CHUNK,
            mean_rate,
            horizon,
            reader: None,
            buf: ChunkBuf::empty(),
            pos: 0,
        }
    }

    fn refill(&mut self) -> Option<()> {
        self.pos = 0;
        if let ReplaySource::Shared(consumer) = &mut self.source {
            // The shared scan decodes each chunk once and hands out a
            // ref-counted handle — this consumer never parses anything.
            let next = consumer
                .next_chunk()
                .unwrap_or_else(|e| panic!("trace changed after scan: {e}"));
            return match next {
                Some(chunk) => {
                    self.buf = ChunkBuf::Shared(chunk);
                    Some(())
                }
                None => {
                    self.buf = ChunkBuf::empty();
                    None
                }
            };
        }
        let chunk = self.chunk;
        let reader = match &mut self.reader {
            Some(r) => r,
            None => {
                let fresh: Box<dyn DatasetReader> = match &self.source {
                    // The file was validated by `TraceSpec::scan`; an
                    // open failure now means it vanished mid-campaign.
                    ReplaySource::File(path) => Box::new(
                        CsvReader::open(path)
                            .unwrap_or_else(|e| panic!("trace changed after scan: {e}")),
                    ),
                    ReplaySource::Memory(t) => Box::new(MemoryReader::new(Arc::clone(t))),
                    ReplaySource::Shared(_) => unreachable!("handled above"),
                };
                self.reader.insert(fresh)
            }
        };
        let buf = match &mut self.buf {
            ChunkBuf::Owned(v) => v,
            // A shared handle can't land here (the shared path returned
            // above), but replacing is harmless and keeps this total.
            shared => {
                *shared = ChunkBuf::empty();
                match shared {
                    ChunkBuf::Owned(v) => v,
                    ChunkBuf::Shared(_) => unreachable!(),
                }
            }
        };
        buf.clear();
        let got = reader
            .read_chunk(buf, chunk)
            .unwrap_or_else(|e| panic!("trace changed after scan: {e}"));
        if got == 0 {
            None
        } else {
            Some(())
        }
    }
}

impl Clone for StreamReplay {
    fn clone(&self) -> Self {
        StreamReplay {
            source: self.source.clone(),
            chunk: self.chunk,
            mean_rate: self.mean_rate,
            horizon: self.horizon,
            reader: None,
            buf: ChunkBuf::empty(),
            pos: 0,
        }
    }
}

impl fmt::Debug for StreamReplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let source = match &self.source {
            ReplaySource::File(path) => format!("file {}", path.display()),
            ReplaySource::Memory(t) => format!("memory ({} batches)", t.len()),
            ReplaySource::Shared(c) => format!("shared scan (consumer {})", c.id),
        };
        f.debug_struct("StreamReplay")
            .field("source", &source)
            .field("chunk", &self.chunk)
            .field("mean_rate", &self.mean_rate)
            .field("horizon", &self.horizon)
            .finish()
    }
}

impl ArrivalProcess for StreamReplay {
    #[inline]
    fn next_batch(&mut self, _rng: &mut SimRng) -> Option<ArrivalBatch> {
        if self.pos == self.buf.len() {
            self.refill()?;
        }
        let b = self.buf.as_slice()[self.pos];
        self.pos += 1;
        Some(b)
    }

    /// Burst override: a replay consumes no randomness at generation
    /// time, so the default's stop-after-spread rule (which exists only
    /// to keep generation draws in scalar order) is vacuous here — the
    /// run is a straight bulk copy out of the chunk buffer, still
    /// honoring the rule so run-pulling and one-at-a-time consumers see
    /// the same cadence.
    fn next_batch_run(
        &mut self,
        _rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        let mut n = 0;
        while n < max {
            if self.pos == self.buf.len() && self.refill().is_none() {
                break;
            }
            let buf = self.buf.as_slice();
            let window = &buf[self.pos..buf.len().min(self.pos + (max - n))];
            // Honor the stop-after-spread rule: copy up to and
            // including the first spread > 0 batch of the window.
            let take = match window.iter().position(|b| b.spread > 0.0) {
                Some(i) => i + 1,
                None => window.len(),
            };
            out.extend_from_slice(&window[..take]);
            let stop = window[..take].last().is_some_and(|b| b.spread > 0.0);
            self.pos += take;
            n += take;
            if stop {
                break;
            }
        }
        n
    }

    fn model_rate(&self, _t: SimTime) -> f64 {
        // The whole-trace mean: exact for a stationary trace, which is
        // what oracle-vs-estimator comparisons replay. Non-stationary
        // traces should be driven by an estimator analyzer instead.
        self.mean_rate
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Statistics of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedTrace {
    /// Rows (= batches = requests; the generator emits count 1) written.
    pub rows: u64,
    /// Timestamp of the last row.
    pub end_time: f64,
}

/// Streams a synthetic piecewise-constant-rate Poisson trace to `w` as
/// `time,count,spread` CSV, never materializing it: the offline stand-in
/// for a real datacenter trace that CI replays. `pieces` are
/// `(start_time, rate)` breakpoints starting at 0; deterministic in
/// `seed` (inverse-CDF exponential gaps off one RNG stream).
pub fn generate_piecewise_csv<W: Write>(
    w: W,
    pieces: &[(f64, f64)],
    horizon: SimTime,
    seed: u64,
) -> io::Result<GeneratedTrace> {
    assert!(
        !pieces.is_empty() && pieces[0].0 == 0.0,
        "pieces must start at t=0"
    );
    assert!(pieces.windows(2).all(|p| p[0].0 < p[1].0));
    assert!(pieces.iter().all(|&(_, r)| r >= 0.0 && r.is_finite()));
    let mut w = io::BufWriter::new(w);
    writeln!(w, "time,count,spread")?;
    let mut rng = vmprov_des::RngFactory::new(seed).stream("trace-gen");
    let end = horizon.as_secs();
    let mut t = 0.0f64;
    let mut rows = 0u64;
    let mut last = 0.0f64;
    let mut piece = 0usize;
    loop {
        let piece_end = pieces.get(piece + 1).map_or(end, |&(s, _)| s);
        let rate = pieces[piece].1;
        if rate <= 0.0 {
            t = piece_end;
        } else {
            t += -rng.uniform01_open_left().ln() / rate;
        }
        // Crossing a breakpoint restarts the exponential clock there
        // (memorylessness makes that exact, same as PiecewiseRateProcess).
        if t >= piece_end {
            if piece + 1 >= pieces.len() || t >= end {
                break;
            }
            t = piece_end;
            piece += 1;
            continue;
        }
        if t >= end {
            break;
        }
        writeln!(w, "{t},1,0")?;
        rows += 1;
        last = t;
    }
    w.flush()?;
    Ok(GeneratedTrace {
        rows,
        end_time: last,
    })
}

/// [`generate_piecewise_csv`] for a single constant rate.
pub fn generate_poisson_csv<W: Write>(
    w: W,
    rate: f64,
    horizon: SimTime,
    seed: u64,
) -> io::Result<GeneratedTrace> {
    generate_piecewise_csv(w, &[(0.0, rate)], horizon, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    fn drain_via(reader: &mut dyn DatasetReader, chunk: usize) -> Vec<ArrivalBatch> {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            let n = reader.read_chunk(&mut buf, chunk).expect("read_chunk");
            if n == 0 {
                return all;
            }
            assert!(n <= chunk, "reader overfilled the chunk");
            all.extend_from_slice(&buf);
        }
    }

    #[test]
    fn csv_reader_round_trips_a_written_trace() {
        let trace = Trace::new(vec![
            ArrivalBatch {
                time: SimTime::from_secs(0.0),
                count: 3,
                spread: 60.0,
            },
            ArrivalBatch {
                time: SimTime::from_secs(12.5),
                count: 1,
                spread: 0.0,
            },
        ])
        .unwrap();
        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let mut reader = CsvReader::new(io::BufReader::new(&csv[..]));
        assert_eq!(drain_via(&mut reader, 16), trace.batches());
    }

    #[test]
    fn csv_reader_accepts_headerless_two_column_and_comments() {
        let input = "0.0,5\n10.0,2,30.0\n# comment\n\n";
        let mut reader = CsvReader::new(io::BufReader::new(input.as_bytes()));
        let got = drain_via(&mut reader, 4);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].count, 5);
        assert_eq!(got[0].spread, 0.0);
        assert_eq!(got[1].spread, 30.0);
    }

    #[test]
    fn csv_reader_errors_carry_line_numbers() {
        // (input, offending line, message fragment)
        let cases = [
            ("0,1,0\nabc,1,0\n", 2, "bad time"),
            ("0,1,0\n1.0\n", 2, "truncated row"),
            ("1.0,notanumber\n", 1, "bad count"),
            ("time,count,spread\n-5.0,1,0\n", 2, "out of range"),
            ("0,1,0\n1.0,1,-2\n", 2, "negative spread"),
            ("0,1,0\n1.0,1,nan\n", 2, "spread"),
            ("0,1,inf\n", 1, "spread"),
            ("time,count,spread\n20.0,1,0\n5.0,2,0\n", 3, "out-of-order"),
        ];
        for (input, line, what) in cases {
            let mut reader = CsvReader::new(io::BufReader::new(input.as_bytes()));
            let mut buf = Vec::new();
            let err = loop {
                buf.clear();
                match reader.read_chunk(&mut buf, 64) {
                    Err(e) => break e,
                    Ok(0) => panic!("{input:?} should fail"),
                    Ok(_) => continue,
                }
            };
            assert_eq!(err.line, Some(line), "{input:?}: {err}");
            assert!(err.msg.contains(what), "{input:?}: {err}");
        }
    }

    #[test]
    fn truncated_file_recovery_reports_the_cut_row() {
        // A trace cut mid-row (torn download): every complete row before
        // the cut parses; the cut row fails with its line number, and a
        // repaired file scans clean.
        let mut csv = Vec::new();
        Trace::new(
            (0..50)
                .map(|i| ArrivalBatch {
                    time: SimTime::from_secs(i as f64),
                    count: 2,
                    spread: 0.0,
                })
                .collect(),
        )
        .unwrap()
        .write_csv(&mut csv)
        .unwrap();
        let cut = &csv[..csv.len() - 4]; // leaves "49," — no count digits
        let mut reader = CsvReader::new(io::BufReader::new(cut));
        let mut buf = Vec::new();
        let err = loop {
            buf.clear();
            match reader.read_chunk(&mut buf, 7) {
                Err(e) => break e,
                Ok(0) => panic!("cut file must error"),
                Ok(_) => continue,
            }
        };
        assert_eq!(err.line, Some(51), "{err}"); // header + 50 rows
        assert!(err.msg.contains("bad count"), "{err}");

        let dir = std::env::temp_dir().join(format!("vmprov_dataset_cut_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repaired.csv");
        std::fs::write(&path, &csv).unwrap();
        let spec = TraceSpec::scan(&path, 64).expect("repaired file scans");
        assert_eq!(spec.batches, 50);
        assert_eq!(spec.total_requests, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arrivals_bit_identical_across_chunk_sizes() {
        // The chunk buffer must be invisible: whatever the buffer size,
        // the replayed arrival stream is bit-identical. Random traces ×
        // buffer sizes {1, 7, 4096}, through both the in-memory and the
        // on-disk source.
        let dir = std::env::temp_dir().join(format!("vmprov_dataset_chunk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        vmprov_check::cases(24, |g| {
            let mut t = 0.0f64;
            let batches: Vec<ArrivalBatch> = (0..g.usize_in(0..200))
                .map(|_| {
                    t += g.f64_in(0.0..3.0);
                    ArrivalBatch {
                        time: SimTime::from_secs(t),
                        count: g.usize_in(1..5) as u64,
                        spread: g.f64_in(0.0..10.0),
                    }
                })
                .collect();
            let trace = Trace::new(batches.clone()).unwrap();
            let path = dir.join("case.csv");
            let mut csv = Vec::new();
            trace.write_csv(&mut csv).unwrap();
            std::fs::write(&path, &csv).unwrap();

            let mut rng = RngFactory::new(1).stream("unused");
            // CSV text → f64 loses nothing (Display is shortest
            // round-trip), so even file replay is bit-exact.
            let reference: Vec<ArrivalBatch> = {
                let mut r = TraceSpec::scan(&path, 4096).unwrap().replay();
                std::iter::from_fn(|| r.next_batch(&mut rng)).collect()
            };
            assert_eq!(reference, batches, "CSV round trip must be exact");
            for chunk in [1usize, 7, 4096] {
                let spec = TraceSpec::scan(&path, chunk).unwrap();
                let mut file_replay = spec.replay();
                let file_stream: Vec<ArrivalBatch> =
                    std::iter::from_fn(|| file_replay.next_batch(&mut rng)).collect();
                assert_eq!(file_stream, reference, "chunk {chunk} (file)");
                let mut mem_replay = StreamReplay::from_trace(trace.clone());
                mem_replay.chunk = chunk;
                let mem_stream: Vec<ArrivalBatch> =
                    std::iter::from_fn(|| mem_replay.next_batch(&mut rng)).collect();
                assert_eq!(mem_stream, reference, "chunk {chunk} (memory)");
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_computes_hash_totals_and_rate() {
        let dir = std::env::temp_dir().join(format!("vmprov_dataset_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "time,count,spread\n0,5,0\n100,15,0\n").unwrap();
        let spec = TraceSpec::scan(&path, 8).unwrap();
        assert_eq!(spec.total_requests, 20);
        assert_eq!(spec.batches, 2);
        assert_eq!(spec.end_time.as_secs(), 100.0);
        assert!((spec.mean_rate - 0.2).abs() < 1e-12);
        // Identity is content, not location: a copy hashes identically,
        // an edit does not.
        let copy = dir.join("copy.csv");
        std::fs::copy(&path, &copy).unwrap();
        assert_eq!(
            TraceSpec::scan(&copy, 8).unwrap().content_hash,
            spec.content_hash
        );
        std::fs::write(&path, "time,count,spread\n0,5,0\n100,16,0\n").unwrap();
        assert_ne!(
            TraceSpec::scan(&path, 8).unwrap().content_hash,
            spec.content_hash
        );
        let missing = TraceSpec::scan(&dir.join("nope.csv"), 8).unwrap_err();
        assert_eq!(missing.line, None);
        assert!(missing.msg.contains("cannot open"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clone_restarts_the_stream() {
        let trace = Trace::new(vec![ArrivalBatch {
            time: SimTime::from_secs(1.0),
            count: 1,
            spread: 0.0,
        }])
        .unwrap();
        let mut rng = RngFactory::new(1).stream("unused");
        let mut a = StreamReplay::from_trace(trace);
        assert!(a.next_batch(&mut rng).is_some());
        assert!(a.next_batch(&mut rng).is_none());
        let mut b = a.clone();
        assert!(b.next_batch(&mut rng).is_some(), "clone starts fresh");
    }

    #[test]
    fn generator_is_deterministic_and_matches_rate() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let horizon = SimTime::from_secs(2000.0);
        let ga = generate_poisson_csv(&mut a, 5.0, horizon, 42).unwrap();
        let gb = generate_poisson_csv(&mut b, 5.0, horizon, 42).unwrap();
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(ga, gb);
        let n = ga.rows as f64;
        assert!((n - 10_000.0).abs() < 3.0 * 10_000f64.sqrt(), "rows {n}");
        let mut c = Vec::new();
        generate_poisson_csv(&mut c, 5.0, horizon, 43).unwrap();
        assert_ne!(a, c, "different seed, different trace");
        // The generated bytes parse clean through the reader.
        let mut reader = CsvReader::new(io::BufReader::new(&a[..]));
        let batches = drain_via(&mut reader, 4096);
        assert_eq!(batches.len() as u64, ga.rows);
        assert!(batches.iter().all(|b| b.count == 1 && b.spread == 0.0));
    }

    /// Drains one replay to completion on its own thread, alternating
    /// between the scalar and the run-pulling consumer seam so shared
    /// chunks are exercised through both paths.
    fn drain_replay_threaded(replays: Vec<StreamReplay>) -> Vec<Vec<ArrivalBatch>> {
        let handles: Vec<_> = replays
            .into_iter()
            .enumerate()
            .map(|(i, mut r)| {
                std::thread::spawn(move || {
                    let mut rng = RngFactory::new(1).stream("unused");
                    let mut got = Vec::new();
                    if i % 2 == 0 {
                        while let Some(b) = r.next_batch(&mut rng) {
                            got.push(b);
                        }
                    } else {
                        let mut run = Vec::new();
                        loop {
                            run.clear();
                            if r.next_batch_run(&mut rng, 64, &mut run) == 0 {
                                break;
                            }
                            got.extend_from_slice(&run);
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn shared_scan_decodes_once_and_fans_out() {
        // N concurrent consumers over one scan all see the reference
        // stream bit-identically, while the underlying reader decodes
        // every batch exactly once and the window never exceeds the
        // backpressure bound.
        let dir =
            std::env::temp_dir().join(format!("vmprov_dataset_shared_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.csv");
        let mut csv = Vec::new();
        generate_poisson_csv(&mut csv, 4.0, SimTime::from_secs(500.0), 11).unwrap();
        std::fs::write(&path, &csv).unwrap();

        for chunk in [1usize, 7, 4096] {
            let spec = TraceSpec::scan(&path, chunk).unwrap();
            let mut rng = RngFactory::new(1).stream("unused");
            let reference: Vec<ArrivalBatch> = {
                let mut r = spec.replay();
                std::iter::from_fn(|| r.next_batch(&mut rng)).collect()
            };
            for consumers in [1usize, 2, 5] {
                let (scan, replays) = spec.replay_shared(consumers).unwrap();
                for (i, got) in drain_replay_threaded(replays).into_iter().enumerate() {
                    assert_eq!(got, reference, "chunk {chunk}, consumer {i}/{consumers}");
                }
                let stats = scan.stats();
                assert_eq!(stats.consumers, consumers);
                assert_eq!(
                    stats.batches_decoded, spec.batches,
                    "chunk {chunk}: every batch decoded exactly once"
                );
                assert_eq!(
                    stats.chunks_decoded,
                    spec.batches.div_ceil(chunk as u64),
                    "chunk {chunk}: chunk count"
                );
                assert!(
                    stats.max_window <= SCAN_DEPTH,
                    "chunk {chunk}: window {} breached the bound",
                    stats.max_window
                );
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_scan_preserves_spread_batches() {
        // The stop-after-spread rule of `next_batch_run` must behave
        // identically through shared chunks (spread > 0 rows break runs
        // at the same points).
        let trace = Trace::new(
            (0..300)
                .map(|i| ArrivalBatch {
                    time: SimTime::from_secs(i as f64),
                    count: 1 + (i % 3) as u64,
                    spread: if i % 11 == 0 { 30.0 } else { 0.0 },
                })
                .collect(),
        )
        .unwrap();
        let reference = trace.batches().to_vec();
        let (scan, consumers) =
            SharedTraceScan::fan_out(Box::new(MemoryReader::new(Arc::new(trace))), 3, 16);
        let replays: Vec<StreamReplay> = consumers
            .into_iter()
            .map(|c| StreamReplay {
                source: ReplaySource::Shared(c),
                chunk: 16,
                mean_rate: 1.0,
                horizon: SimTime::from_secs(300.0),
                reader: None,
                buf: ChunkBuf::empty(),
                pos: 0,
            })
            .collect();
        for got in drain_replay_threaded(replays) {
            assert_eq!(got, reference);
        }
        assert_eq!(scan.stats().batches_decoded, 300);
    }

    #[test]
    fn dropped_consumer_does_not_wedge_the_group() {
        // A consumer that dies mid-grid (drop without draining) must not
        // backpressure the survivors: its cursor deregisters and the
        // scan keeps flowing.
        let trace = Trace::new(
            (0..1000)
                .map(|i| ArrivalBatch {
                    time: SimTime::from_secs(i as f64),
                    count: 1,
                    spread: 0.0,
                })
                .collect(),
        )
        .unwrap();
        let reference = trace.batches().to_vec();
        // chunk 8 → 125 chunks, far beyond SCAN_DEPTH: survivors only
        // finish if eviction stops waiting on the dropped consumer.
        let (scan, mut consumers) =
            SharedTraceScan::fan_out(Box::new(MemoryReader::new(Arc::new(trace))), 3, 8);
        drop(consumers.remove(1));
        let replays: Vec<StreamReplay> = consumers
            .into_iter()
            .map(|c| StreamReplay {
                source: ReplaySource::Shared(c),
                chunk: 8,
                mean_rate: 1.0,
                horizon: SimTime::from_secs(1000.0),
                reader: None,
                buf: ChunkBuf::empty(),
                pos: 0,
            })
            .collect();
        for got in drain_replay_threaded(replays) {
            assert_eq!(got, reference);
        }
        assert_eq!(scan.stats().batches_decoded, 1000);
    }

    #[test]
    fn shared_replay_clone_panics_with_a_clear_message() {
        let trace = Trace::new(vec![ArrivalBatch {
            time: SimTime::from_secs(0.0),
            count: 1,
            spread: 0.0,
        }])
        .unwrap();
        let (_scan, consumers) =
            SharedTraceScan::fan_out(Box::new(MemoryReader::new(Arc::new(trace))), 1, 4);
        let replay = StreamReplay {
            source: ReplaySource::Shared(consumers.into_iter().next().unwrap()),
            chunk: 4,
            mean_rate: 1.0,
            horizon: SimTime::from_secs(1.0),
            reader: None,
            buf: ChunkBuf::empty(),
            pos: 0,
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| replay.clone()))
            .expect_err("cloning a shared-scan replay must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("single-pass"), "unhelpful panic: {msg}");
    }

    #[test]
    fn shared_scan_propagates_reader_errors_to_every_consumer() {
        let input = "0,1,0\n1.0,notanumber\n";
        let reader = CsvReader::new(io::BufReader::new(input.as_bytes()));
        let (_scan, consumers) = SharedTraceScan::fan_out(Box::new(reader), 2, 64);
        for mut c in consumers {
            let err = c.next_chunk().expect_err("bad row must surface");
            assert_eq!(err.line, Some(2), "{err}");
            assert!(err.msg.contains("bad count"), "{err}");
        }
    }

    #[test]
    fn step_generator_shifts_density_at_the_breakpoint() {
        let mut csv = Vec::new();
        let horizon = SimTime::from_secs(1000.0);
        generate_piecewise_csv(&mut csv, &[(0.0, 1.0), (500.0, 10.0)], horizon, 7).unwrap();
        let mut reader = CsvReader::new(io::BufReader::new(&csv[..]));
        let times: Vec<f64> = drain_via(&mut reader, 4096)
            .iter()
            .map(|b| b.time.as_secs())
            .collect();
        let before = times.iter().filter(|&&t| t < 500.0).count() as f64;
        let after = times.len() as f64 - before;
        assert!((before - 500.0).abs() < 100.0, "before {before}");
        assert!((after - 5000.0).abs() < 300.0, "after {after}");
    }
}
