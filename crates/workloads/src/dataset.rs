//! Streaming trace ingestion: the **`DatasetReader` seam**.
//!
//! Every recorded or external trace enters the simulator through one
//! trait, [`DatasetReader`]: a chunked pull interface that yields
//! time-ordered [`ArrivalBatch`] runs without ever materializing the
//! full trace. [`CsvReader`] implements it for `time,count,spread` CSV
//! files (the only on-disk format today); [`MemoryReader`] adapts an
//! in-memory [`Trace`] so recorded traces replay through the same seam;
//! future dataset formats (Wikipedia request logs, cluster traces) slot
//! in as further implementations without touching the simulator.
//!
//! [`StreamReplay`] turns any reader into an [`ArrivalProcess`]: it
//! buffers `chunk` batches at a time, so peak ingestion memory is
//! `chunk × size_of::<ArrivalBatch>()` regardless of trace length, and
//! a 10M-request file replays in a few megabytes. Arrivals are
//! byte-identical for every chunk size (pinned by a property test): the
//! buffer is pure plumbing, invisible to the simulation.
//!
//! External files are validated **up front** by [`TraceSpec::scan`],
//! which streams the file once to check it parses end to end and to
//! compute the content hash (the run-cache key component), request
//! totals, and the mean arrival rate. Scan-time errors are line-numbered
//! [`DatasetError`]s, never panics. A reader error *during* the
//! simulation — after a successful scan — means the file changed
//! underneath the run, and `StreamReplay` treats that as fatal.

use crate::trace::Trace;
use crate::traits::{ArrivalBatch, ArrivalProcess};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vmprov_des::{SimRng, SimTime, StableHasher};

/// A trace-ingestion failure, with the 1-based source line when the
/// failure is attributable to one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetError {
    /// 1-based line number of the offending row (`None` for I/O-level
    /// failures that have no line, e.g. the file not existing).
    pub line: Option<u64>,
    /// What went wrong.
    pub msg: String,
}

impl DatasetError {
    /// A line-attributed parse error.
    pub fn at(line: u64, msg: impl Into<String>) -> Self {
        DatasetError {
            line: Some(line),
            msg: msg.into(),
        }
    }

    /// A file-level error with no line.
    pub fn io(msg: impl Into<String>) -> Self {
        DatasetError {
            line: None,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "line {n}: {}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A chunked source of time-ordered arrival batches.
///
/// The one seam through which every trace format reaches the simulator.
/// Implementations stream: a call fills `out` with at most `max`
/// batches and must not buffer the whole dataset internally.
pub trait DatasetReader: Send {
    /// Appends up to `max` batches to `out`, returning how many were
    /// appended; `0` means the dataset is exhausted. Batches must be
    /// non-decreasing in time, both within one chunk and across chunks.
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError>;
}

/// Streaming `time,count,spread` CSV reader (header and comment lines
/// skipped; the spread column optional, defaulting to 0).
///
/// Unlike the retired `Trace::read_csv`, which slurped the file and
/// sorted it, this reader holds one line at a time — so out-of-order
/// timestamps are a *parse error* (streaming cannot sort), as are
/// truncated rows, non-finite or negative values, all reported with
/// their line number.
pub struct CsvReader<R> {
    input: R,
    line: u64,
    last_time: f64,
    buf: String,
}

impl CsvReader<BufReader<File>> {
    /// Opens a CSV trace file.
    pub fn open(path: &Path) -> Result<Self, DatasetError> {
        let file = File::open(path)
            .map_err(|e| DatasetError::io(format!("cannot open {}: {e}", path.display())))?;
        Ok(CsvReader::new(BufReader::new(file)))
    }
}

impl<R: BufRead> CsvReader<R> {
    /// Wraps any buffered reader producing CSV text.
    pub fn new(input: R) -> Self {
        CsvReader {
            input,
            line: 0,
            last_time: 0.0,
            buf: String::new(),
        }
    }

    /// Parses the current `self.buf` into a batch, or `None` for
    /// skippable lines (blank, header, comment).
    fn parse_line(&mut self) -> Result<Option<ArrivalBatch>, DatasetError> {
        let line = self.buf.trim();
        if line.is_empty() || line.starts_with("time") || line.starts_with('#') {
            return Ok(None);
        }
        let n = self.line;
        let mut parts = line.split(',');
        let time_field = parts.next().unwrap_or(""); // split yields ≥1 part
        let time: f64 = time_field
            .trim()
            .parse()
            .map_err(|_| DatasetError::at(n, format!("bad time {time_field:?}")))?;
        let count_field = parts
            .next()
            .ok_or_else(|| DatasetError::at(n, "truncated row: missing count column"))?;
        let count: u64 = count_field
            .trim()
            .parse()
            .map_err(|_| DatasetError::at(n, format!("bad count {count_field:?}")))?;
        let spread: f64 = match parts.next() {
            Some(s) => s
                .trim()
                .parse()
                .map_err(|_| DatasetError::at(n, format!("bad spread {s:?}")))?,
            None => 0.0,
        };
        if !time.is_finite() || time < 0.0 {
            return Err(DatasetError::at(n, format!("time {time} out of range")));
        }
        if !spread.is_finite() || spread < 0.0 {
            return Err(DatasetError::at(
                n,
                format!("non-finite or negative spread {spread}"),
            ));
        }
        if time < self.last_time {
            return Err(DatasetError::at(
                n,
                format!(
                    "out-of-order timestamp {time} (previous row at {})",
                    self.last_time
                ),
            ));
        }
        self.last_time = time;
        Ok(Some(ArrivalBatch {
            time: SimTime::from_secs(time),
            count,
            spread,
        }))
    }
}

impl<R: BufRead + Send> DatasetReader for CsvReader<R> {
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError> {
        let mut appended = 0;
        while appended < max {
            self.buf.clear();
            let n = self
                .input
                .read_line(&mut self.buf)
                .map_err(|e| DatasetError::at(self.line + 1, format!("read failed: {e}")))?;
            if n == 0 {
                break; // EOF
            }
            self.line += 1;
            if let Some(batch) = self.parse_line()? {
                out.push(batch);
                appended += 1;
            }
        }
        Ok(appended)
    }
}

/// Adapts a recorded in-memory [`Trace`] to the reader seam, so
/// recorded and on-disk traces replay through identical plumbing. The
/// `Arc` keeps cloning a replay cheap: the batches are shared, only the
/// cursor is per-reader.
pub struct MemoryReader {
    trace: Arc<Trace>,
    pos: usize,
}

impl MemoryReader {
    /// Creates a reader over a shared trace.
    pub fn new(trace: Arc<Trace>) -> Self {
        MemoryReader { trace, pos: 0 }
    }
}

impl DatasetReader for MemoryReader {
    fn read_chunk(
        &mut self,
        out: &mut Vec<ArrivalBatch>,
        max: usize,
    ) -> Result<usize, DatasetError> {
        let rest = &self.trace.batches()[self.pos..];
        let take = rest.len().min(max);
        out.extend_from_slice(&rest[..take]);
        self.pos += take;
        Ok(take)
    }
}

/// Default batches held in memory at once by [`StreamReplay`] — 8192
/// batches ≈ 192 KiB, the whole ingestion footprint of a replay.
pub const DEFAULT_CHUNK: usize = 8192;

/// Everything a run needs to know about an on-disk trace, computed by
/// one up-front streaming [`scan`](TraceSpec::scan): the content hash
/// (what the run cache keys on — two copies of one trace share cache
/// entries, and an edited trace never aliases the old one), request and
/// batch totals, the end time (= replay horizon), and the whole-trace
/// mean arrival rate (the oracle λ for a stationary trace).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Where the trace lives. Not part of the cache identity.
    pub path: PathBuf,
    /// Stable 64-bit hash of the raw file bytes.
    pub content_hash: u64,
    /// Total requests (sum of the count column).
    pub total_requests: u64,
    /// Number of batch rows.
    pub batches: u64,
    /// Timestamp of the last batch.
    pub end_time: SimTime,
    /// `total_requests / end_time` (0 for an empty or instant trace).
    pub mean_rate: f64,
    /// Batches buffered per [`read_chunk`](DatasetReader::read_chunk)
    /// call during replay. Pure execution mechanics: results are
    /// bit-identical for every value (property-tested), so it is *not*
    /// part of the cache identity.
    pub chunk: usize,
}

impl TraceSpec {
    /// Streams the file at `path` once, validating every row and
    /// computing the spec. This is where all external-file errors
    /// surface, as line-numbered [`DatasetError`]s.
    pub fn scan(path: &Path, chunk: usize) -> Result<TraceSpec, DatasetError> {
        assert!(chunk >= 1, "chunk must hold at least one batch");
        // Pass 1: hash the raw bytes (format-agnostic identity).
        let mut file = File::open(path)
            .map_err(|e| DatasetError::io(format!("cannot open {}: {e}", path.display())))?;
        let mut hasher = StableHasher::new();
        let mut block = [0u8; 64 * 1024];
        loop {
            let n = file
                .read(&mut block)
                .map_err(|e| DatasetError::io(format!("read {}: {e}", path.display())))?;
            if n == 0 {
                break;
            }
            hasher.write(&block[..n]);
        }
        // Pass 2: parse every row through the same reader the replay
        // will use, accumulating totals chunk by chunk.
        let mut reader = CsvReader::open(path)?;
        let mut buf = Vec::with_capacity(chunk);
        let (mut total, mut batches) = (0u64, 0u64);
        let mut end = SimTime::ZERO;
        loop {
            buf.clear();
            if reader.read_chunk(&mut buf, chunk)? == 0 {
                break;
            }
            for b in &buf {
                total += b.count;
                end = b.time;
            }
            batches += buf.len() as u64;
        }
        let mean_rate = if end > SimTime::ZERO {
            total as f64 / end.as_secs()
        } else {
            0.0
        };
        Ok(TraceSpec {
            path: path.to_path_buf(),
            content_hash: hasher.finish(),
            total_requests: total,
            batches,
            end_time: end,
            mean_rate,
            chunk,
        })
    }

    /// Builds the streaming replay process for this trace.
    pub fn replay(&self) -> StreamReplay {
        StreamReplay {
            source: ReplaySource::File(self.path.clone()),
            chunk: self.chunk,
            mean_rate: self.mean_rate,
            horizon: self.end_time,
            reader: None,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

/// Where a [`StreamReplay`] gets its reader from. Kept re-openable so
/// the replay can be `Clone` (each clone starts a fresh pass) even
/// though a live reader is not.
#[derive(Clone)]
enum ReplaySource {
    File(PathBuf),
    Memory(Arc<Trace>),
}

/// An [`ArrivalProcess`] that streams batches off a [`DatasetReader`]
/// `chunk` at a time. Consumes no randomness; peak memory is one chunk
/// of batches regardless of trace length.
///
/// Cloning resets the stream: the clone replays from the start with its
/// own reader (the source — a path or a shared in-memory trace — is
/// what's cloned, never reader state). That keeps `AnyWorkload: Clone`
/// intact without pretending a half-consumed file handle can fork.
pub struct StreamReplay {
    source: ReplaySource,
    chunk: usize,
    mean_rate: f64,
    horizon: SimTime,
    reader: Option<Box<dyn DatasetReader>>,
    buf: Vec<ArrivalBatch>,
    pos: usize,
}

impl StreamReplay {
    /// Replays a recorded in-memory trace (see also [`Trace::replay`]).
    pub fn from_trace(trace: Trace) -> StreamReplay {
        let horizon = trace.end_time();
        let mean_rate = if horizon > SimTime::ZERO {
            trace.total_requests() as f64 / horizon.as_secs()
        } else {
            0.0
        };
        StreamReplay {
            source: ReplaySource::Memory(Arc::new(trace)),
            chunk: DEFAULT_CHUNK,
            mean_rate,
            horizon,
            reader: None,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn refill(&mut self) -> Option<()> {
        let chunk = self.chunk;
        let reader = match &mut self.reader {
            Some(r) => r,
            None => {
                let fresh: Box<dyn DatasetReader> = match &self.source {
                    // The file was validated by `TraceSpec::scan`; an
                    // open failure now means it vanished mid-campaign.
                    ReplaySource::File(path) => Box::new(
                        CsvReader::open(path)
                            .unwrap_or_else(|e| panic!("trace changed after scan: {e}")),
                    ),
                    ReplaySource::Memory(t) => Box::new(MemoryReader::new(Arc::clone(t))),
                };
                self.reader.insert(fresh)
            }
        };
        self.buf.clear();
        self.pos = 0;
        let got = reader
            .read_chunk(&mut self.buf, chunk)
            .unwrap_or_else(|e| panic!("trace changed after scan: {e}"));
        if got == 0 {
            None
        } else {
            Some(())
        }
    }
}

impl Clone for StreamReplay {
    fn clone(&self) -> Self {
        StreamReplay {
            source: self.source.clone(),
            chunk: self.chunk,
            mean_rate: self.mean_rate,
            horizon: self.horizon,
            reader: None,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl fmt::Debug for StreamReplay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let source = match &self.source {
            ReplaySource::File(path) => format!("file {}", path.display()),
            ReplaySource::Memory(t) => format!("memory ({} batches)", t.len()),
        };
        f.debug_struct("StreamReplay")
            .field("source", &source)
            .field("chunk", &self.chunk)
            .field("mean_rate", &self.mean_rate)
            .field("horizon", &self.horizon)
            .finish()
    }
}

impl ArrivalProcess for StreamReplay {
    #[inline]
    fn next_batch(&mut self, _rng: &mut SimRng) -> Option<ArrivalBatch> {
        if self.pos == self.buf.len() {
            self.refill()?;
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Some(b)
    }

    /// Burst override: a replay consumes no randomness at generation
    /// time, so the default's stop-after-spread rule (which exists only
    /// to keep generation draws in scalar order) is vacuous here — the
    /// run is a straight bulk copy out of the chunk buffer, still
    /// honoring the rule so run-pulling and one-at-a-time consumers see
    /// the same cadence.
    fn next_batch_run(
        &mut self,
        _rng: &mut SimRng,
        max: usize,
        out: &mut Vec<ArrivalBatch>,
    ) -> usize {
        let mut n = 0;
        while n < max {
            if self.pos == self.buf.len() && self.refill().is_none() {
                break;
            }
            let window = &self.buf[self.pos..self.buf.len().min(self.pos + (max - n))];
            // Honor the stop-after-spread rule: copy up to and
            // including the first spread > 0 batch of the window.
            let take = match window.iter().position(|b| b.spread > 0.0) {
                Some(i) => i + 1,
                None => window.len(),
            };
            out.extend_from_slice(&window[..take]);
            self.pos += take;
            n += take;
            if window[..take].last().is_some_and(|b| b.spread > 0.0) {
                break;
            }
        }
        n
    }

    fn model_rate(&self, _t: SimTime) -> f64 {
        // The whole-trace mean: exact for a stationary trace, which is
        // what oracle-vs-estimator comparisons replay. Non-stationary
        // traces should be driven by an estimator analyzer instead.
        self.mean_rate
    }

    fn horizon(&self) -> SimTime {
        self.horizon
    }
}

/// Statistics of a generated trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratedTrace {
    /// Rows (= batches = requests; the generator emits count 1) written.
    pub rows: u64,
    /// Timestamp of the last row.
    pub end_time: f64,
}

/// Streams a synthetic piecewise-constant-rate Poisson trace to `w` as
/// `time,count,spread` CSV, never materializing it: the offline stand-in
/// for a real datacenter trace that CI replays. `pieces` are
/// `(start_time, rate)` breakpoints starting at 0; deterministic in
/// `seed` (inverse-CDF exponential gaps off one RNG stream).
pub fn generate_piecewise_csv<W: Write>(
    w: W,
    pieces: &[(f64, f64)],
    horizon: SimTime,
    seed: u64,
) -> io::Result<GeneratedTrace> {
    assert!(
        !pieces.is_empty() && pieces[0].0 == 0.0,
        "pieces must start at t=0"
    );
    assert!(pieces.windows(2).all(|p| p[0].0 < p[1].0));
    assert!(pieces.iter().all(|&(_, r)| r >= 0.0 && r.is_finite()));
    let mut w = io::BufWriter::new(w);
    writeln!(w, "time,count,spread")?;
    let mut rng = vmprov_des::RngFactory::new(seed).stream("trace-gen");
    let end = horizon.as_secs();
    let mut t = 0.0f64;
    let mut rows = 0u64;
    let mut last = 0.0f64;
    let mut piece = 0usize;
    loop {
        let piece_end = pieces.get(piece + 1).map_or(end, |&(s, _)| s);
        let rate = pieces[piece].1;
        if rate <= 0.0 {
            t = piece_end;
        } else {
            t += -rng.uniform01_open_left().ln() / rate;
        }
        // Crossing a breakpoint restarts the exponential clock there
        // (memorylessness makes that exact, same as PiecewiseRateProcess).
        if t >= piece_end {
            if piece + 1 >= pieces.len() || t >= end {
                break;
            }
            t = piece_end;
            piece += 1;
            continue;
        }
        if t >= end {
            break;
        }
        writeln!(w, "{t},1,0")?;
        rows += 1;
        last = t;
    }
    w.flush()?;
    Ok(GeneratedTrace {
        rows,
        end_time: last,
    })
}

/// [`generate_piecewise_csv`] for a single constant rate.
pub fn generate_poisson_csv<W: Write>(
    w: W,
    rate: f64,
    horizon: SimTime,
    seed: u64,
) -> io::Result<GeneratedTrace> {
    generate_piecewise_csv(w, &[(0.0, rate)], horizon, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmprov_des::RngFactory;

    fn drain_via(reader: &mut dyn DatasetReader, chunk: usize) -> Vec<ArrivalBatch> {
        let mut all = Vec::new();
        let mut buf = Vec::new();
        loop {
            buf.clear();
            let n = reader.read_chunk(&mut buf, chunk).expect("read_chunk");
            if n == 0 {
                return all;
            }
            assert!(n <= chunk, "reader overfilled the chunk");
            all.extend_from_slice(&buf);
        }
    }

    #[test]
    fn csv_reader_round_trips_a_written_trace() {
        let trace = Trace::new(vec![
            ArrivalBatch {
                time: SimTime::from_secs(0.0),
                count: 3,
                spread: 60.0,
            },
            ArrivalBatch {
                time: SimTime::from_secs(12.5),
                count: 1,
                spread: 0.0,
            },
        ])
        .unwrap();
        let mut csv = Vec::new();
        trace.write_csv(&mut csv).unwrap();
        let mut reader = CsvReader::new(io::BufReader::new(&csv[..]));
        assert_eq!(drain_via(&mut reader, 16), trace.batches());
    }

    #[test]
    fn csv_reader_accepts_headerless_two_column_and_comments() {
        let input = "0.0,5\n10.0,2,30.0\n# comment\n\n";
        let mut reader = CsvReader::new(io::BufReader::new(input.as_bytes()));
        let got = drain_via(&mut reader, 4);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].count, 5);
        assert_eq!(got[0].spread, 0.0);
        assert_eq!(got[1].spread, 30.0);
    }

    #[test]
    fn csv_reader_errors_carry_line_numbers() {
        // (input, offending line, message fragment)
        let cases = [
            ("0,1,0\nabc,1,0\n", 2, "bad time"),
            ("0,1,0\n1.0\n", 2, "truncated row"),
            ("1.0,notanumber\n", 1, "bad count"),
            ("time,count,spread\n-5.0,1,0\n", 2, "out of range"),
            ("0,1,0\n1.0,1,-2\n", 2, "negative spread"),
            ("0,1,0\n1.0,1,nan\n", 2, "spread"),
            ("0,1,inf\n", 1, "spread"),
            ("time,count,spread\n20.0,1,0\n5.0,2,0\n", 3, "out-of-order"),
        ];
        for (input, line, what) in cases {
            let mut reader = CsvReader::new(io::BufReader::new(input.as_bytes()));
            let mut buf = Vec::new();
            let err = loop {
                buf.clear();
                match reader.read_chunk(&mut buf, 64) {
                    Err(e) => break e,
                    Ok(0) => panic!("{input:?} should fail"),
                    Ok(_) => continue,
                }
            };
            assert_eq!(err.line, Some(line), "{input:?}: {err}");
            assert!(err.msg.contains(what), "{input:?}: {err}");
        }
    }

    #[test]
    fn truncated_file_recovery_reports_the_cut_row() {
        // A trace cut mid-row (torn download): every complete row before
        // the cut parses; the cut row fails with its line number, and a
        // repaired file scans clean.
        let mut csv = Vec::new();
        Trace::new(
            (0..50)
                .map(|i| ArrivalBatch {
                    time: SimTime::from_secs(i as f64),
                    count: 2,
                    spread: 0.0,
                })
                .collect(),
        )
        .unwrap()
        .write_csv(&mut csv)
        .unwrap();
        let cut = &csv[..csv.len() - 4]; // leaves "49," — no count digits
        let mut reader = CsvReader::new(io::BufReader::new(cut));
        let mut buf = Vec::new();
        let err = loop {
            buf.clear();
            match reader.read_chunk(&mut buf, 7) {
                Err(e) => break e,
                Ok(0) => panic!("cut file must error"),
                Ok(_) => continue,
            }
        };
        assert_eq!(err.line, Some(51), "{err}"); // header + 50 rows
        assert!(err.msg.contains("bad count"), "{err}");

        let dir = std::env::temp_dir().join(format!("vmprov_dataset_cut_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repaired.csv");
        std::fs::write(&path, &csv).unwrap();
        let spec = TraceSpec::scan(&path, 64).expect("repaired file scans");
        assert_eq!(spec.batches, 50);
        assert_eq!(spec.total_requests, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arrivals_bit_identical_across_chunk_sizes() {
        // The chunk buffer must be invisible: whatever the buffer size,
        // the replayed arrival stream is bit-identical. Random traces ×
        // buffer sizes {1, 7, 4096}, through both the in-memory and the
        // on-disk source.
        let dir = std::env::temp_dir().join(format!("vmprov_dataset_chunk_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        vmprov_check::cases(24, |g| {
            let mut t = 0.0f64;
            let batches: Vec<ArrivalBatch> = (0..g.usize_in(0..200))
                .map(|_| {
                    t += g.f64_in(0.0..3.0);
                    ArrivalBatch {
                        time: SimTime::from_secs(t),
                        count: g.usize_in(1..5) as u64,
                        spread: g.f64_in(0.0..10.0),
                    }
                })
                .collect();
            let trace = Trace::new(batches.clone()).unwrap();
            let path = dir.join("case.csv");
            let mut csv = Vec::new();
            trace.write_csv(&mut csv).unwrap();
            std::fs::write(&path, &csv).unwrap();

            let mut rng = RngFactory::new(1).stream("unused");
            // CSV text → f64 loses nothing (Display is shortest
            // round-trip), so even file replay is bit-exact.
            let reference: Vec<ArrivalBatch> = {
                let mut r = TraceSpec::scan(&path, 4096).unwrap().replay();
                std::iter::from_fn(|| r.next_batch(&mut rng)).collect()
            };
            assert_eq!(reference, batches, "CSV round trip must be exact");
            for chunk in [1usize, 7, 4096] {
                let spec = TraceSpec::scan(&path, chunk).unwrap();
                let mut file_replay = spec.replay();
                let file_stream: Vec<ArrivalBatch> =
                    std::iter::from_fn(|| file_replay.next_batch(&mut rng)).collect();
                assert_eq!(file_stream, reference, "chunk {chunk} (file)");
                let mut mem_replay = StreamReplay::from_trace(trace.clone());
                mem_replay.chunk = chunk;
                let mem_stream: Vec<ArrivalBatch> =
                    std::iter::from_fn(|| mem_replay.next_batch(&mut rng)).collect();
                assert_eq!(mem_stream, reference, "chunk {chunk} (memory)");
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_computes_hash_totals_and_rate() {
        let dir = std::env::temp_dir().join(format!("vmprov_dataset_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, "time,count,spread\n0,5,0\n100,15,0\n").unwrap();
        let spec = TraceSpec::scan(&path, 8).unwrap();
        assert_eq!(spec.total_requests, 20);
        assert_eq!(spec.batches, 2);
        assert_eq!(spec.end_time.as_secs(), 100.0);
        assert!((spec.mean_rate - 0.2).abs() < 1e-12);
        // Identity is content, not location: a copy hashes identically,
        // an edit does not.
        let copy = dir.join("copy.csv");
        std::fs::copy(&path, &copy).unwrap();
        assert_eq!(
            TraceSpec::scan(&copy, 8).unwrap().content_hash,
            spec.content_hash
        );
        std::fs::write(&path, "time,count,spread\n0,5,0\n100,16,0\n").unwrap();
        assert_ne!(
            TraceSpec::scan(&path, 8).unwrap().content_hash,
            spec.content_hash
        );
        let missing = TraceSpec::scan(&dir.join("nope.csv"), 8).unwrap_err();
        assert_eq!(missing.line, None);
        assert!(missing.msg.contains("cannot open"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clone_restarts_the_stream() {
        let trace = Trace::new(vec![ArrivalBatch {
            time: SimTime::from_secs(1.0),
            count: 1,
            spread: 0.0,
        }])
        .unwrap();
        let mut rng = RngFactory::new(1).stream("unused");
        let mut a = StreamReplay::from_trace(trace);
        assert!(a.next_batch(&mut rng).is_some());
        assert!(a.next_batch(&mut rng).is_none());
        let mut b = a.clone();
        assert!(b.next_batch(&mut rng).is_some(), "clone starts fresh");
    }

    #[test]
    fn generator_is_deterministic_and_matches_rate() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let horizon = SimTime::from_secs(2000.0);
        let ga = generate_poisson_csv(&mut a, 5.0, horizon, 42).unwrap();
        let gb = generate_poisson_csv(&mut b, 5.0, horizon, 42).unwrap();
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(ga, gb);
        let n = ga.rows as f64;
        assert!((n - 10_000.0).abs() < 3.0 * 10_000f64.sqrt(), "rows {n}");
        let mut c = Vec::new();
        generate_poisson_csv(&mut c, 5.0, horizon, 43).unwrap();
        assert_ne!(a, c, "different seed, different trace");
        // The generated bytes parse clean through the reader.
        let mut reader = CsvReader::new(io::BufReader::new(&a[..]));
        let batches = drain_via(&mut reader, 4096);
        assert_eq!(batches.len() as u64, ga.rows);
        assert!(batches.iter().all(|b| b.count == 1 && b.spread == 0.0));
    }

    #[test]
    fn step_generator_shifts_density_at_the_breakpoint() {
        let mut csv = Vec::new();
        let horizon = SimTime::from_secs(1000.0);
        generate_piecewise_csv(&mut csv, &[(0.0, 1.0), (500.0, 10.0)], horizon, 7).unwrap();
        let mut reader = CsvReader::new(io::BufReader::new(&csv[..]));
        let times: Vec<f64> = drain_via(&mut reader, 4096)
            .iter()
            .map(|b| b.time.as_secs())
            .collect();
        let before = times.iter().filter(|&&t| t < 500.0).count() as f64;
        let after = times.len() as f64 - before;
        assert!((before - 500.0).abs() < 100.0, "before {before}");
        assert!((after - 5000.0).abs() < 300.0, "after {after}");
    }
}
