//! Property-based tests (proptest) over the public API: invariants that
//! must hold for *arbitrary* parameters, not just the evaluation's.

use proptest::prelude::*;
use vmprov::core::dispatch::{Dispatcher, InstanceView, LeastOutstanding, RoundRobin};
use vmprov::core::modeler::{ModelerOptions, PerformanceModeler, SizingInputs};
use vmprov::core::{AnalyticBackend, QosTargets};
use vmprov::des::stats::OnlineStats;
use vmprov::des::{EventQueue, SimTime};
use vmprov::queueing::{GiM1K, InterarrivalKind, GG1K, MM1K};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mm1k_metrics_always_valid(
        lambda in 0.01f64..50.0,
        mu in 0.01f64..50.0,
        k in 1u32..40,
    ) {
        let m = MM1K::new(lambda, mu, k).unwrap().metrics();
        prop_assert!(m.validate().is_ok(), "{m:?}: {:?}", m.validate());
        // Accepted response bounded by k services.
        prop_assert!(m.mean_response_time <= f64::from(k) / mu + 1e-9);
        // State probabilities normalise.
        let model = MM1K::new(lambda, mu, k).unwrap();
        let total: f64 = (0..=k).map(|n| model.prob_n(n)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn mm1k_blocking_monotone_in_lambda(
        l1 in 0.01f64..20.0,
        delta in 0.0f64..20.0,
        mu in 0.1f64..10.0,
        k in 1u32..20,
    ) {
        let a = MM1K::new(l1, mu, k).unwrap().blocking_probability();
        let b = MM1K::new(l1 + delta, mu, k).unwrap().blocking_probability();
        prop_assert!(b >= a - 1e-12);
    }

    #[test]
    fn gim1k_reduces_to_mm1k_for_poisson(
        lambda in 0.05f64..5.0,
        k in 1u32..15,
    ) {
        let gi = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Exponential).unwrap();
        let mm = MM1K::new(lambda, 1.0, k).unwrap();
        prop_assert!(
            (gi.blocking_probability() - mm.blocking_probability()).abs() < 1e-7
        );
    }

    #[test]
    fn gim1k_smoothing_never_hurts(
        lambda in 0.05f64..3.0,
        k in 1u32..10,
        stages in 2u32..64,
    ) {
        // Smoother (Erlang) arrivals never block more than Poisson.
        let poisson = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Exponential).unwrap();
        let erlang = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Erlang { stages }).unwrap();
        prop_assert!(
            erlang.blocking_probability() <= poisson.blocking_probability() + 1e-9
        );
    }

    #[test]
    fn gg1k_metrics_always_valid(
        rho in 0.01f64..3.0,
        ca2 in 0.0f64..2.0,
        cs2 in 0.0f64..2.0,
        k in 1u32..20,
    ) {
        let q = GG1K::new(rho, 1.0, ca2, cs2, k).unwrap();
        let m = q.metrics();
        prop_assert!(m.validate().is_ok(), "{m:?}: {:?}", m.validate());
        let total: f64 = (0..=k).map(|n| q.prob_n(n)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8, "normalisation {total}");
    }

    #[test]
    fn algorithm1_always_terminates_in_bounds(
        lambda in 0.1f64..5_000.0,
        tm in 0.001f64..10.0,
        current in 1u32..2_000,
        max_vms in 1u32..5_000,
        verbatim in any::<bool>(),
    ) {
        let qos = QosTargets::new(tm * 3.0, 0.0, 0.80); // k = 3 nominal
        let modeler = PerformanceModeler::new(
            qos,
            max_vms,
            ModelerOptions { verbatim_bounds: verbatim, ..ModelerOptions::default() },
        );
        let d = modeler.required_instances(&SizingInputs {
            expected_arrival_rate: lambda,
            monitored_service_time: tm,
            service_scv: 0.01,
            current_instances: current,
        });
        prop_assert!(d.instances >= 1 && d.instances <= max_vms);
        prop_assert!(d.iterations <= 200);
        // If the cap allows ρ ≤ 0.9, the returned size must meet QoS.
        let feasible = lambda * tm / f64::from(max_vms) <= 0.9;
        if feasible && !verbatim {
            prop_assert!(
                d.predicted.blocking_probability <= 1e-3 + 1e-9,
                "λ={lambda} tm={tm} m={} blocking {}",
                d.instances,
                d.predicted.blocking_probability
            );
        }
    }

    #[test]
    fn algorithm1_monotone_enough_in_load(
        lambda in 1.0f64..1_000.0,
        factor in 1.5f64..4.0,
    ) {
        // Doubling-plus load never yields a smaller pool (same start).
        let qos = QosTargets::new(0.25, 0.0, 0.80);
        let modeler = PerformanceModeler::new(qos, 100_000, ModelerOptions::default());
        let size = |l: f64| modeler.required_instances(&SizingInputs {
            expected_arrival_rate: l,
            monitored_service_time: 0.105,
            service_scv: 0.001,
            current_instances: 64,
        }).instances;
        prop_assert!(size(lambda * factor) >= size(lambda));
    }

    #[test]
    fn eq1_capacity_respects_response_bound(
        ts in 0.01f64..100.0,
        tr_frac in 0.001f64..1.5,
    ) {
        let tr = ts * tr_frac;
        let qos = QosTargets::new(ts, 0.0, 0.8);
        let k = qos.queue_capacity(tr);
        prop_assert!(k >= 1);
        // Either k·Tr ≤ Ts, or Tr alone exceeds Ts and k was floored at 1.
        prop_assert!(f64::from(k) * tr <= ts + 1e-9 || (k == 1 && tr > ts - 1e-9));
    }

    #[test]
    fn dispatchers_never_pick_full_or_inactive(
        sizes in prop::collection::vec((0u32..4, any::<bool>()), 0..20),
        pointer_moves in 0usize..5,
    ) {
        let views: Vec<InstanceView> = sizes
            .iter()
            .map(|&(in_system, accepting)| InstanceView { in_system, capacity: 3, accepting })
            .collect();
        let mut rr = RoundRobin::new();
        let mut lo = LeastOutstanding::new();
        for i in 0..=pointer_moves {
            let u = i as f64 / (pointer_moves + 1) as f64;
            for pick in [rr.pick(&views, u), lo.pick(&views, u)] {
                match pick {
                    Some(idx) => prop_assert!(views[idx].has_room()),
                    None => prop_assert!(views.iter().all(|v| !v.has_room())),
                }
            }
        }
    }

    #[test]
    fn online_stats_merge_equals_sequential(
        xs in prop::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs { whole.push(x); }
        let (a, b) = xs.split_at(split);
        let mut s1 = OnlineStats::new();
        let mut s2 = OnlineStats::new();
        for &x in a { s1.push(x); }
        for &x in b { s2.push(x); }
        s1.merge(&s2);
        prop_assert_eq!(s1.count(), whole.count());
        prop_assert!((s1.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        prop_assert!((s1.variance() - whole.variance()).abs()
            <= 1e-5 * whole.variance().abs().max(1.0));
    }

    #[test]
    fn event_queue_pops_sorted_stable(
        times in prop::collection::vec(0.0f64..1e6, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut prev_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = vec![];
        let mut last = None;
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= prev_time);
            if Some(t) == last {
                // FIFO within equal timestamps: ids increase.
                prop_assert!(seen_at_time.last().map_or(true, |&p| id > p));
                seen_at_time.push(id);
            } else {
                seen_at_time = vec![id];
            }
            prev_time = t;
            last = Some(t);
        }
    }
}
