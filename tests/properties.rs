//! Property-based tests over the public API: invariants that must hold
//! for *arbitrary* parameters, not just the evaluation's.

use vmprov::core::dispatch::{Dispatcher, InstanceView, LeastOutstanding, RoundRobin};
use vmprov::core::modeler::{ModelerOptions, PerformanceModeler, SizingInputs};
use vmprov::core::QosTargets;
use vmprov::des::stats::OnlineStats;
use vmprov::des::{EventQueue, FelBackend, SimTime};
use vmprov::queueing::{GiM1K, InterarrivalKind, GG1K, MM1K};
use vmprov_check::{cases, Gen};

#[test]
fn mm1k_metrics_always_valid() {
    cases(128, |g: &mut Gen| {
        let lambda = g.f64_in(0.01..50.0);
        let mu = g.f64_in(0.01..50.0);
        let k = g.u32_in(1..40);
        let m = MM1K::new(lambda, mu, k).unwrap().metrics();
        assert!(m.validate().is_ok(), "{m:?}: {:?}", m.validate());
        // Accepted response bounded by k services.
        assert!(m.mean_response_time <= f64::from(k) / mu + 1e-9);
        // State probabilities normalise.
        let model = MM1K::new(lambda, mu, k).unwrap();
        let total: f64 = (0..=k).map(|n| model.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-8);
    });
}

#[test]
fn mm1k_blocking_monotone_in_lambda() {
    cases(128, |g: &mut Gen| {
        let l1 = g.f64_in(0.01..20.0);
        let delta = g.f64_in(0.0..20.0);
        let mu = g.f64_in(0.1..10.0);
        let k = g.u32_in(1..20);
        let a = MM1K::new(l1, mu, k).unwrap().blocking_probability();
        let b = MM1K::new(l1 + delta, mu, k).unwrap().blocking_probability();
        assert!(b >= a - 1e-12);
    });
}

#[test]
fn gim1k_reduces_to_mm1k_for_poisson() {
    cases(128, |g: &mut Gen| {
        let lambda = g.f64_in(0.05..5.0);
        let k = g.u32_in(1..15);
        let gi = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Exponential).unwrap();
        let mm = MM1K::new(lambda, 1.0, k).unwrap();
        assert!((gi.blocking_probability() - mm.blocking_probability()).abs() < 1e-7);
    });
}

#[test]
fn gim1k_smoothing_never_hurts() {
    cases(128, |g: &mut Gen| {
        let lambda = g.f64_in(0.05..3.0);
        let k = g.u32_in(1..10);
        let stages = g.u32_in(2..64);
        // Smoother (Erlang) arrivals never block more than Poisson.
        let poisson = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Exponential).unwrap();
        let erlang = GiM1K::new(lambda, 1.0, k, InterarrivalKind::Erlang { stages }).unwrap();
        assert!(erlang.blocking_probability() <= poisson.blocking_probability() + 1e-9);
    });
}

#[test]
fn gg1k_metrics_always_valid() {
    cases(128, |g: &mut Gen| {
        let rho = g.f64_in(0.01..3.0);
        let ca2 = g.f64_in(0.0..2.0);
        let cs2 = g.f64_in(0.0..2.0);
        let k = g.u32_in(1..20);
        let q = GG1K::new(rho, 1.0, ca2, cs2, k).unwrap();
        let m = q.metrics();
        assert!(m.validate().is_ok(), "{m:?}: {:?}", m.validate());
        let total: f64 = (0..=k).map(|n| q.prob_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-8, "normalisation {total}");
    });
}

#[test]
fn algorithm1_always_terminates_in_bounds() {
    cases(128, |g: &mut Gen| {
        let lambda = g.f64_in(0.1..5_000.0);
        let tm = g.f64_in(0.001..10.0);
        let current = g.u32_in(1..2_000);
        let max_vms = g.u32_in(1..5_000);
        let verbatim = g.chance(0.5);
        let qos = QosTargets::new(tm * 3.0, 0.0, 0.80); // k = 3 nominal
        let modeler = PerformanceModeler::new(
            qos,
            max_vms,
            ModelerOptions {
                verbatim_bounds: verbatim,
                ..ModelerOptions::default()
            },
        );
        let d = modeler.required_instances(&SizingInputs {
            expected_arrival_rate: lambda,
            monitored_service_time: tm,
            service_scv: 0.01,
            current_instances: current,
        });
        assert!(d.instances >= 1 && d.instances <= max_vms);
        assert!(d.iterations <= 200);
        // If the cap allows ρ ≤ 0.9, the returned size must meet QoS.
        let feasible = lambda * tm / f64::from(max_vms) <= 0.9;
        if feasible && !verbatim {
            assert!(
                d.predicted.blocking_probability <= 1e-3 + 1e-9,
                "λ={lambda} tm={tm} m={} blocking {}",
                d.instances,
                d.predicted.blocking_probability
            );
        }
    });
}

#[test]
fn algorithm1_monotone_enough_in_load() {
    cases(128, |g: &mut Gen| {
        let lambda = g.f64_in(1.0..1_000.0);
        let factor = g.f64_in(1.5..4.0);
        // Doubling-plus load never yields a smaller pool (same start).
        let qos = QosTargets::new(0.25, 0.0, 0.80);
        let modeler = PerformanceModeler::new(qos, 100_000, ModelerOptions::default());
        let size = |l: f64| {
            modeler
                .required_instances(&SizingInputs {
                    expected_arrival_rate: l,
                    monitored_service_time: 0.105,
                    service_scv: 0.001,
                    current_instances: 64,
                })
                .instances
        };
        assert!(size(lambda * factor) >= size(lambda));
    });
}

#[test]
fn eq1_capacity_respects_response_bound() {
    cases(128, |g: &mut Gen| {
        let ts = g.f64_in(0.01..100.0);
        let tr = ts * g.f64_in(0.001..1.5);
        let qos = QosTargets::new(ts, 0.0, 0.8);
        let k = qos.queue_capacity(tr);
        assert!(k >= 1);
        // Either k·Tr ≤ Ts, or Tr alone exceeds Ts and k was floored at 1.
        assert!(f64::from(k) * tr <= ts + 1e-9 || (k == 1 && tr > ts - 1e-9));
    });
}

#[test]
fn dispatchers_never_pick_full_or_inactive() {
    cases(128, |g: &mut Gen| {
        let views: Vec<InstanceView> = g.vec(0..20, |g| InstanceView {
            in_system: g.u32_in(0..4),
            capacity: 3,
            accepting: g.chance(0.5),
        });
        let pointer_moves = g.usize_in(0..5);
        let mut rr = RoundRobin::new();
        let mut lo = LeastOutstanding::new();
        for i in 0..=pointer_moves {
            let u = i as f64 / (pointer_moves + 1) as f64;
            for pick in [rr.pick(&views, u), lo.pick(&views, u)] {
                match pick {
                    Some(idx) => assert!(views[idx].has_room()),
                    None => assert!(views.iter().all(|v| !v.has_room())),
                }
            }
        }
    });
}

#[test]
fn online_stats_merge_equals_sequential() {
    cases(128, |g: &mut Gen| {
        let xs = g.vec(1..200, |g| g.f64_in(-1e6..1e6));
        let split = g.usize_in(0..200).min(xs.len());
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(split);
        let mut s1 = OnlineStats::new();
        let mut s2 = OnlineStats::new();
        for &x in a {
            s1.push(x);
        }
        for &x in b {
            s2.push(x);
        }
        s1.merge(&s2);
        assert_eq!(s1.count(), whole.count());
        assert!((s1.mean() - whole.mean()).abs() <= 1e-6 * whole.mean().abs().max(1.0));
        assert!((s1.variance() - whole.variance()).abs() <= 1e-5 * whole.variance().abs().max(1.0));
    });
}

#[test]
fn event_queue_pops_sorted_stable() {
    cases(128, |g: &mut Gen| {
        for backend in [FelBackend::Calendar, FelBackend::BinaryHeap] {
            let times = g.vec(1..300, |g| g.f64_in(0.0..1e6));
            let mut q = EventQueue::with_backend(backend);
            for (i, &t) in times.iter().enumerate() {
                q.schedule(SimTime::from_secs(t), i);
            }
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((pt, pid)) = prev {
                    assert!(t >= pt, "{backend:?} went backwards");
                    if t == pt {
                        // FIFO within equal timestamps: ids increase.
                        assert!(id > pid, "{backend:?} broke same-time FIFO");
                    }
                }
                prev = Some((t, id));
            }
            assert!(q.is_empty());
        }
    });
}
