//! End-to-end integration tests through the public facade: the full
//! stack (workload → admission → dispatch → instances → policy) driven
//! via the same API the examples and the experiment harness use.

use std::sync::Arc;
use vmprov::cloudsim::{RunSummary, SimBuilder, SimConfig};
use vmprov::core::analyzer::ScheduleAnalyzer;
use vmprov::core::modeler::{ModelerOptions, PerformanceModeler};
use vmprov::core::policy::AdaptivePolicy;
use vmprov::core::{QosTargets, RoundRobin, StaticPolicy};
use vmprov::des::{RngFactory, SimTime};
use vmprov::experiments::{run_once, PolicySpec, Scenario};
use vmprov::workloads::synthetic::{PiecewiseRateProcess, PoissonProcess};
use vmprov::workloads::ServiceModel;

fn web_qos() -> QosTargets {
    QosTargets::new(0.250, 0.0, 0.80)
}

fn run_static_poisson(m: u32, rate: f64, horizon: f64, seed: u64) -> RunSummary {
    SimBuilder::new(SimConfig::paper(0.100, 0.250))
        .workload(Box::new(PoissonProcess::new(
            rate,
            SimTime::from_secs(horizon),
        )))
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(m, web_qos())))
        .dispatcher(Box::new(RoundRobin::new()))
        .run(&RngFactory::new(seed))
}

#[test]
fn facade_reexports_compose() {
    // The five sub-crates are reachable and interoperate via `vmprov::*`.
    let s = run_static_poisson(5, 20.0, 300.0, 1);
    assert!(s.offered_requests > 4_000);
    assert_eq!(s.policy, "Static-5");
}

#[test]
fn admission_bounds_response_time_under_any_load() {
    // The core QoS mechanism: whatever the load, an admitted request's
    // response is bounded by k·(max service) ≤ Ts.
    for rate in [5.0, 50.0, 500.0] {
        let s = run_static_poisson(10, rate, 600.0, 2);
        assert!(
            s.max_response_time <= 0.250,
            "rate {rate}: max response {}",
            s.max_response_time
        );
        assert_eq!(s.qos_violations, 0, "rate {rate}");
    }
}

#[test]
fn scenario_api_is_deterministic() {
    let sc = Scenario::web(PolicySpec::Adaptive, 11).with_horizon(SimTime::from_mins(30.0));
    let a = run_once(&sc, 0);
    let b = run_once(&sc, 0);
    assert_eq!(a, b);
}

#[test]
fn adaptive_beats_peak_static_on_cost_with_equal_qos() {
    // A two-level workload: the adaptive pool must spend fewer VM-hours
    // than a static pool sized for the peak, at (near) zero rejection.
    let make_workload = || {
        Box::new(PiecewiseRateProcess::new(
            vec![(0.0, 30.0), (1200.0, 120.0), (2400.0, 30.0)],
            SimTime::from_secs(3600.0),
        ))
    };
    let rate_fn = Arc::new(|t: SimTime| {
        if (1200.0..2400.0).contains(&t.as_secs()) {
            120.0
        } else {
            30.0
        }
    });
    let analyzer = ScheduleAnalyzer::new(rate_fn, 120.0, 0.0);
    let modeler = PerformanceModeler::new(web_qos(), 500, ModelerOptions::default());
    let adaptive = SimBuilder::new(SimConfig::paper(0.100, 0.250))
        .workload(make_workload())
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(AdaptivePolicy::new(
            Box::new(analyzer),
            modeler,
            240.0,
            5,
        )))
        .dispatcher(Box::new(RoundRobin::new()))
        .run(&RngFactory::new(21));
    let peak_static = SimBuilder::new(SimConfig::paper(0.100, 0.250))
        .workload(make_workload())
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(StaticPolicy::new(16, web_qos())))
        .dispatcher(Box::new(RoundRobin::new()))
        .run(&RngFactory::new(21));
    assert!(
        adaptive.rejection_rate < 0.005,
        "{}",
        adaptive.rejection_rate
    );
    assert!(peak_static.rejection_rate < 0.005);
    assert!(
        adaptive.vm_hours < peak_static.vm_hours,
        "adaptive {} vs static {}",
        adaptive.vm_hours,
        peak_static.vm_hours
    );
    // And it visibly scaled.
    assert!(adaptive.max_instances >= adaptive.min_instances + 5);
}

#[test]
fn no_accepted_request_is_ever_lost() {
    // Drain semantics: accepted == completed even with aggressive
    // scale-downs (the piecewise workload forces them).
    let workload = Box::new(PiecewiseRateProcess::new(
        vec![(0.0, 100.0), (600.0, 5.0), (1200.0, 100.0), (1800.0, 5.0)],
        SimTime::from_secs(2400.0),
    ));
    let rate_fn = Arc::new(|t: SimTime| {
        let s = t.as_secs().rem_euclid(1200.0);
        if s < 600.0 {
            100.0
        } else {
            5.0
        }
    });
    let analyzer = ScheduleAnalyzer::new(rate_fn, 60.0, 0.0);
    let modeler = PerformanceModeler::new(web_qos(), 500, ModelerOptions::default());
    let s = SimBuilder::new(SimConfig::paper(0.100, 0.250))
        .workload(workload)
        .service(ServiceModel::new(0.100, 0.10))
        .policy(Box::new(AdaptivePolicy::new(
            Box::new(analyzer),
            modeler,
            90.0,
            12,
        )))
        .dispatcher(Box::new(RoundRobin::new()))
        .run(&RngFactory::new(33));
    assert_eq!(
        s.accepted_requests + s.rejected_requests,
        s.offered_requests
    );
    // RunSummary.accepted counts admissions; the response stats count
    // completions — they must agree.
    assert!(s.mean_response_time > 0.0);
}

#[test]
fn static_capacity_monotonicity_via_scenarios() {
    // Through the experiments API: more static capacity, fewer
    // rejections, monotonically (common random numbers across sizes).
    let horizon = SimTime::from_mins(20.0);
    let mut prev = f64::INFINITY;
    for m in [40u32, 60, 80] {
        let sc = Scenario::web(PolicySpec::Static(m), 5).with_horizon(horizon);
        let s = run_once(&sc, 0);
        assert!(
            s.rejection_rate <= prev + 1e-12,
            "m={m}: {} > previous {prev}",
            s.rejection_rate
        );
        prev = s.rejection_rate;
    }
}

#[test]
fn utilization_matches_offered_load_for_underloaded_static() {
    // Work conservation through the whole stack: busy time equals the
    // served work, so utilization ≈ λ·E[S]/m.
    let s = run_static_poisson(20, 100.0, 1_200.0, 8);
    assert_eq!(s.rejected_requests, 0);
    let expected = 100.0 * 0.105 / 20.0;
    assert!(
        (s.utilization - expected).abs() < 0.02,
        "utilization {} vs {expected}",
        s.utilization
    );
}
