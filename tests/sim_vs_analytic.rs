//! Cross-validation: the analytic queueing models against discrete-event
//! simulation — the evidence that the performance modeler's predictions
//! describe the system the simulator actually runs.

use vmprov::des::dist::{Distribution, Exponential};
use vmprov::des::{Engine, RngFactory, Scheduler, SimRng, SimTime, World};
use vmprov::queueing::{GiM1K, InterarrivalKind, GG1K, MM1K};

/// A GI/M/1/K simulation: renewal arrivals (drawn by a closure),
/// exponential service, capacity K.
struct QueueWorld {
    in_system: u32,
    k: u32,
    service: Exponential,
    draw_interarrival: Box<dyn FnMut(&mut SimRng) -> f64>,
    rng_arrivals: SimRng,
    rng_service: SimRng,
    arrivals: u64,
    blocked: u64,
    completed: u64,
    total_response: f64,
    /// Arrival times of requests in FIFO order.
    fifo: std::collections::VecDeque<f64>,
}

enum Ev {
    Arrival,
    Departure,
}

impl World for QueueWorld {
    type Event = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
        match ev {
            Ev::Arrival => {
                self.arrivals += 1;
                if self.in_system >= self.k {
                    self.blocked += 1;
                } else {
                    self.in_system += 1;
                    self.fifo.push_back(now.as_secs());
                    if self.in_system == 1 {
                        let s = self.service.sample(&mut self.rng_service);
                        sched.after(s, Ev::Departure);
                    }
                }
                let gap = (self.draw_interarrival)(&mut self.rng_arrivals);
                sched.after(gap, Ev::Arrival);
            }
            Ev::Departure => {
                self.in_system -= 1;
                self.completed += 1;
                let arrived = self.fifo.pop_front().expect("departure without arrival");
                self.total_response += now.as_secs() - arrived;
                if self.in_system > 0 {
                    let s = self.service.sample(&mut self.rng_service);
                    sched.after(s, Ev::Departure);
                }
            }
        }
    }
}

/// Runs the queue for `horizon` and returns (blocking fraction, mean
/// response of accepted requests).
fn simulate_queue(
    k: u32,
    mu: f64,
    draw_interarrival: Box<dyn FnMut(&mut SimRng) -> f64>,
    horizon: f64,
    seed: u64,
) -> (f64, f64) {
    let f = RngFactory::new(seed);
    let world = QueueWorld {
        in_system: 0,
        k,
        service: Exponential::new(mu),
        draw_interarrival,
        rng_arrivals: f.stream("arr"),
        rng_service: f.stream("svc"),
        arrivals: 0,
        blocked: 0,
        completed: 0,
        total_response: 0.0,
        fifo: std::collections::VecDeque::new(),
    };
    let mut engine = Engine::new(world);
    engine.schedule(SimTime::ZERO, Ev::Arrival);
    engine.run_until(SimTime::from_secs(horizon));
    let w = engine.world();
    (
        w.blocked as f64 / w.arrivals as f64,
        w.total_response / w.completed as f64,
    )
}

#[test]
fn mm1k_closed_form_matches_simulation() {
    for (lambda, k) in [(0.5, 2u32), (0.8, 2), (0.8, 5), (1.5, 3)] {
        let model = MM1K::new(lambda, 1.0, k).unwrap();
        let exp = Exponential::new(lambda);
        let (blocking, response) =
            simulate_queue(k, 1.0, Box::new(move |rng| exp.sample(rng)), 400_000.0, 42);
        let m = model.metrics();
        assert!(
            (blocking - m.blocking_probability).abs() < 0.01,
            "λ={lambda} k={k}: sim blocking {blocking} vs analytic {}",
            m.blocking_probability
        );
        assert!(
            (response - m.mean_response_time).abs() / m.mean_response_time < 0.03,
            "λ={lambda} k={k}: sim W {response} vs analytic {}",
            m.mean_response_time
        );
    }
}

#[test]
fn erlang_arrival_embedded_chain_matches_simulation() {
    // E_m/M/1/K: the exact embedded-chain solution against a renewal
    // simulation with Erlang-m interarrivals.
    for (m_stages, rho) in [(4u32, 0.8), (16, 0.8), (16, 1.2)] {
        let lambda = rho;
        let stage = Exponential::new(f64::from(m_stages) * lambda);
        let model = GiM1K::new(
            lambda,
            1.0,
            2,
            InterarrivalKind::Erlang { stages: m_stages },
        )
        .unwrap();
        let (blocking, _) = simulate_queue(
            2,
            1.0,
            Box::new(move |rng| (0..m_stages).map(|_| stage.sample(rng)).sum()),
            400_000.0,
            7,
        );
        assert!(
            (blocking - model.blocking_probability()).abs() < 0.012,
            "E{m_stages} ρ={rho}: sim {blocking} vs chain {}",
            model.blocking_probability()
        );
    }
}

#[test]
fn gg1k_diffusion_approximation_is_usable() {
    // The two-moment approximation against an E16/M/1/4 simulation
    // (ca² = 1/16, cs² = 1): accurate to within several points of
    // blocking, and errs on the *conservative* side (over-predicts), so
    // sizing decisions made from it never under-provision.
    for rho in [0.5, 0.8, 0.95] {
        let lambda = rho;
        let stage = Exponential::new(16.0 * lambda);
        let approx = GG1K::new(lambda, 1.0, 1.0 / 16.0, 1.0, 4)
            .unwrap()
            .blocking_probability();
        let (blocking, _) = simulate_queue(
            4,
            1.0,
            Box::new(move |rng| (0..16).map(|_| stage.sample(rng)).sum()),
            300_000.0,
            9,
        );
        // Near saturation the critical-window artifact roughly doubles
        // the prediction; still the right order of magnitude.
        assert!(
            (blocking - approx).abs() < 0.12,
            "ρ={rho}: sim {blocking} vs diffusion {approx}"
        );
        assert!(
            approx >= blocking - 0.01,
            "ρ={rho}: approximation must stay conservative (sim {blocking}, approx {approx})"
        );
    }
}

#[test]
fn paper_regime_has_negligible_blocking_in_both_views() {
    // The load-bearing claim of DESIGN.md §3: in the simulated regime
    // (smooth arrivals, near-deterministic service) blocking is ≈0 at
    // ρ = 0.8 while verbatim M/M/1/2 predicts ~26%. Simulate an
    // E32/D-ish/1/2 queue: Erlang-32 arrivals, service U(1.0, 1.1)/1.05.
    use vmprov::des::dist::Uniform;
    let lambda = 0.8 / 1.05; // ρ = λ·E[S] = 0.8 with E[S] = 1.05
    let stage = Exponential::new(32.0 * lambda);
    let uni = Uniform::new(1.0, 1.1);

    struct DetWorld {
        in_system: u32,
        uni: Uniform,
        stage: Exponential,
        rng_a: SimRng,
        rng_s: SimRng,
        arrivals: u64,
        blocked: u64,
    }
    enum E2 {
        Arr,
        Dep,
    }
    impl World for DetWorld {
        type Event = E2;
        fn handle(&mut self, _now: SimTime, ev: E2, sched: &mut Scheduler<'_, E2>) {
            match ev {
                E2::Arr => {
                    self.arrivals += 1;
                    if self.in_system >= 2 {
                        self.blocked += 1;
                    } else {
                        self.in_system += 1;
                        if self.in_system == 1 {
                            let s = self.uni.sample(&mut self.rng_s);
                            sched.after(s, E2::Dep);
                        }
                    }
                    let gap: f64 = (0..32).map(|_| self.stage.sample(&mut self.rng_a)).sum();
                    sched.after(gap, E2::Arr);
                }
                E2::Dep => {
                    self.in_system -= 1;
                    if self.in_system > 0 {
                        let s = self.uni.sample(&mut self.rng_s);
                        sched.after(s, E2::Dep);
                    }
                }
            }
        }
    }
    let f = RngFactory::new(13);
    let mut engine = Engine::new(DetWorld {
        in_system: 0,
        uni,
        stage,
        rng_a: f.stream("a"),
        rng_s: f.stream("s"),
        arrivals: 0,
        blocked: 0,
    });
    engine.schedule(SimTime::ZERO, E2::Arr);
    engine.run_until(SimTime::from_secs(300_000.0));
    let w = engine.world();
    let sim_blocking = w.blocked as f64 / w.arrivals as f64;

    let verbatim = MM1K::new(0.8 / 1.05, 1.0 / 1.05, 2)
        .unwrap()
        .blocking_probability();
    let two_moment = GG1K::new(lambda, 1.05, 1.0 / 32.0, 0.00076, 2)
        .unwrap()
        .blocking_probability();

    assert!(sim_blocking < 0.02, "simulated blocking {sim_blocking}");
    assert!(two_moment < 0.01, "two-moment {two_moment}");
    assert!(verbatim > 0.25, "verbatim M/M/1/2 {verbatim}");
}
